package stream

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nonstrict/internal/xrand"
)

// testPayload is a deterministic pseudo-random body.
func testPayload(n int) []byte { return xrand.New(42).Bytes(n) }

// serveBytes returns a Range-capable test server for data, with fault
// injection.
func serveBytes(t *testing.T, data []byte, f Fault) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/app", func(w http.ResponseWriter, r *http.Request) {
		http.ServeContent(w, r, "app.bin", time.Time{}, bytes.NewReader(data))
	})
	srv := httptest.NewServer(f.Wrap(mux))
	t.Cleanup(srv.Close)
	return srv
}

// fastClient is a FetchClient whose backoff sleeps are recorded instead
// of waited out.
func fastClient(seed uint64, slept *[]time.Duration) *FetchClient {
	var mu sync.Mutex
	return &FetchClient{
		RequestTimeout: 5 * time.Second,
		JitterSeed:     seed,
		sleep: func(ctx context.Context, d time.Duration) error {
			mu.Lock()
			defer mu.Unlock()
			if slept != nil {
				*slept = append(*slept, d)
			}
			return ctx.Err()
		},
	}
}

// TestFetchResumesAfterDrop is the headline fault-tolerance property:
// the server kills the connection every kB, and the client still
// delivers the exact payload by resuming with Range requests.
func TestFetchResumesAfterDrop(t *testing.T) {
	data := testPayload(8<<10 + 137)
	srv := serveBytes(t, data, Fault{DropEvery: 1000})
	c := fastClient(1, nil)

	var got bytes.Buffer
	n, err := c.Fetch(context.Background(), srv.URL+"/app", &got)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(data)) || !bytes.Equal(got.Bytes(), data) {
		t.Fatalf("fetched %d bytes, want %d; content equal: %v", n, len(data), bytes.Equal(got.Bytes(), data))
	}
	st := c.Stats()
	if st.Resumes < 8 {
		t.Errorf("resumes = %d, want at least 8 (one per kB drop)", st.Resumes)
	}
	if st.BytesTransferred != int64(len(data)) {
		t.Errorf("bytes transferred = %d, want %d (no double counting across resumes)", st.BytesTransferred, len(data))
	}
	if st.Requests != st.Resumes+1 {
		t.Errorf("requests = %d, want resumes+1 = %d", st.Requests, st.Resumes+1)
	}
}

// TestFetchTimeoutBackoffSuccess: a server that stalls on its first
// request trips the per-request watchdog; the client backs off and the
// retry succeeds.
func TestFetchTimeoutBackoffSuccess(t *testing.T) {
	data := testPayload(2048)
	var reqs atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/app", func(w http.ResponseWriter, r *http.Request) {
		if reqs.Add(1) == 1 {
			<-r.Context().Done() // stall: no headers until the client gives up
			return
		}
		http.ServeContent(w, r, "app.bin", time.Time{}, bytes.NewReader(data))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var slept []time.Duration
	c := fastClient(1, &slept)
	c.RequestTimeout = 50 * time.Millisecond

	var got bytes.Buffer
	if _, err := c.Fetch(context.Background(), srv.URL+"/app", &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), data) {
		t.Fatal("content mismatch after timeout recovery")
	}
	if st := c.Stats(); st.Retries < 1 {
		t.Errorf("retries = %d, want at least 1", st.Retries)
	}
	if len(slept) < 1 {
		t.Error("no backoff sleep recorded before the retry")
	}
}

// TestFetchRange: the demand-fetch path pulls an arbitrary byte range
// through the same resume policy.
func TestFetchRange(t *testing.T) {
	data := testPayload(4096)
	srv := serveBytes(t, data, Fault{DropEvery: 100})
	c := fastClient(1, nil)

	var got bytes.Buffer
	n, err := c.FetchRange(context.Background(), srv.URL+"/app", 100, 500, &got)
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 || !bytes.Equal(got.Bytes(), data[100:600]) {
		t.Fatalf("range fetch returned %d bytes, equal: %v", n, bytes.Equal(got.Bytes(), data[100:600]))
	}
	if st := c.Stats(); st.Resumes < 4 {
		t.Errorf("resumes = %d, want at least 4 under 100-byte drops", st.Resumes)
	}
	if _, err := c.FetchRange(context.Background(), srv.URL+"/app", -1, 10, io.Discard); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := c.FetchRange(context.Background(), srv.URL+"/app", 0, 0, io.Discard); err == nil {
		t.Error("empty range accepted")
	}
}

// TestFetchDeterministicUnderSeed: the injected faults are positional
// and the jitter is seeded, so two identical transfers observe identical
// counter values, and two clients with the same seed produce the same
// backoff schedule (a different seed produces a different one).
func TestFetchDeterministicUnderSeed(t *testing.T) {
	data := testPayload(6000)
	var stats [2]FetchStats
	for i := range stats {
		srv := serveBytes(t, data, Fault{DropEvery: 512})
		c := fastClient(99, nil)
		var got bytes.Buffer
		if _, err := c.Fetch(context.Background(), srv.URL+"/app", &got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), data) {
			t.Fatal("content mismatch")
		}
		stats[i] = c.Stats()
		srv.Close()
	}
	if stats[0] != stats[1] {
		t.Errorf("two identical faulty transfers disagree: %+v vs %+v", stats[0], stats[1])
	}

	seq := func(seed uint64) []time.Duration {
		c := &FetchClient{JitterSeed: seed, BackoffBase: 100 * time.Millisecond, BackoffMax: 2 * time.Second}
		var out []time.Duration
		for fails := 1; fails <= 8; fails++ {
			out = append(out, c.backoff(fails))
		}
		return out
	}
	a, b, other := seq(7), seq(7), seq(8)
	differs := false
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("same seed, different backoff at attempt %d: %v vs %v", i+1, a[i], b[i])
		}
		if a[i] != other[i] {
			differs = true
		}
		cap := 2 * time.Second
		want := 100 * time.Millisecond << (i)
		if want > cap {
			want = cap
		}
		if a[i] < want/2 || a[i] >= want {
			t.Errorf("attempt %d: backoff %v outside [%v, %v)", i+1, a[i], want/2, want)
		}
	}
	if !differs {
		t.Error("different seeds produced identical jitter")
	}
}

// TestFetchPermanentAndExhaustedErrors: 4xx fails immediately without
// retries; a dead server fails after the retry budget.
func TestFetchPermanentAndExhaustedErrors(t *testing.T) {
	srv := serveBytes(t, testPayload(16), Fault{})
	c := fastClient(1, nil)
	if _, err := c.Open(context.Background(), srv.URL+"/nope"); err == nil || !errors.Is(err, ErrFetchFailed) {
		t.Errorf("404 open: %v", err)
	}
	if st := c.Stats(); st.Retries != 0 {
		t.Errorf("404 consumed %d retries", st.Retries)
	}

	dead := fastClient(1, nil)
	dead.MaxRetries = 2
	srv2 := httptest.NewServer(http.NotFoundHandler())
	url := srv2.URL
	srv2.Close() // nothing is listening any more
	if _, err := dead.Open(context.Background(), url+"/app"); err == nil || !errors.Is(err, ErrFetchFailed) {
		t.Errorf("dead server open: %v", err)
	}
	if st := dead.Stats(); st.Retries != 2 {
		t.Errorf("dead server retries = %d, want 2", st.Retries)
	}

	// A canceled context wins over the retry loop.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fastClient(1, nil).Open(ctx, url+"/app"); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled open: %v", err)
	}
}

// TestFetchLoaderEndToEnd: the non-strict loader consumes a benchmark
// stream through the resuming reader over a lossy link and assembles the
// complete, verified program.
func TestFetchLoaderEndToEnd(t *testing.T) {
	_, rp, _, w := plan(t, "Hanoi")
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	srv := serveBytes(t, buf.Bytes(), Fault{DropEvery: 700})
	c := fastClient(1, nil)

	r, err := c.Open(context.Background(), srv.URL+"/app")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	l := NewLoader(rp.Name, rp.MainClass, nil)
	events := 0
	if err := l.Load(r, func(Event) { events++ }); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Program(); err != nil {
		t.Fatal(err)
	}
	if l.Consumed() != w.Size() {
		t.Errorf("consumed %d bytes, want %d", l.Consumed(), w.Size())
	}
	if events == 0 {
		t.Error("no loader events over the lossy link")
	}
	if st := c.Stats(); st.Resumes == 0 {
		t.Error("stream fit in one connection; fault injection did not engage")
	}
}

// TestBackoffSubNanosecondBase is the regression test for the
// mod-by-zero panic: a BackoffBase whose halved delay truncates to zero
// must skip the jitter, not divide by it.
func TestBackoffSubNanosecondBase(t *testing.T) {
	c := &FetchClient{BackoffBase: 1} // 1ns: d/2 == 0 on the first retry
	for fails := 1; fails <= 6; fails++ {
		d := c.backoff(fails)
		if d <= 0 {
			t.Errorf("backoff(%d) = %v, want > 0", fails, d)
		}
	}
}

// TestFetchRejects206WithoutContentRange is the regression test for the
// silent resume desync: a 206 whose Content-Range is missing or garbage
// proves nothing about where the body starts, so the client must treat
// it as a retryable failure instead of splicing the bytes in blind.
func TestFetchRejects206WithoutContentRange(t *testing.T) {
	for _, header := range []string{"", "garbage", "bytes x-y/z", "bytes 999"} {
		t.Run("header="+header, func(t *testing.T) {
			hits := 0
			mux := http.NewServeMux()
			mux.HandleFunc("/bad", func(w http.ResponseWriter, r *http.Request) {
				hits++
				if header != "" {
					w.Header().Set("Content-Range", header)
				}
				w.WriteHeader(http.StatusPartialContent)
				w.Write([]byte("0123456789")) // bytes from offset 0, not 5
			})
			srv := httptest.NewServer(mux)
			defer srv.Close()

			c := fastClient(1, nil)
			c.MaxRetries = 2
			var got bytes.Buffer
			_, err := c.FetchRange(context.Background(), srv.URL+"/bad", 5, 5, &got)
			if err == nil {
				t.Fatalf("unverifiable 206 accepted; spliced %q at offset 5", got.String())
			}
			if !errors.Is(err, ErrFetchFailed) {
				t.Errorf("error %v, want ErrFetchFailed", err)
			}
			if !strings.Contains(err.Error(), "Content-Range") {
				t.Errorf("error %v does not name the bad header", err)
			}
			if hits < 3 {
				t.Errorf("gave up after %d attempts; the failure must be retryable", hits)
			}
			if got.Len() > 0 {
				t.Errorf("%d misplaced bytes delivered", got.Len())
			}
		})
	}
}

// splicingServer serves data with Range support, but poisons the first
// k whole-range fetches of the unit at offset target: it sends a short
// prefix whose first byte is flipped, flushes it onto the wire, then
// kills the connection. The resumed remainder is served clean, so a
// client that resumes from the last RECEIVED byte assembles a
// full-length payload whose prefix is garbage — the transient splice
// corruption FetchRangeVerified exists to catch. Fresh fetches after
// the first k, resumes, and requests for other offsets are all intact.
func splicingServer(t *testing.T, data []byte, target int64, k int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var poisoned atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/app", func(w http.ResponseWriter, r *http.Request) {
		var from, to int64 = -1, -1
		fmt.Sscanf(r.Header.Get("Range"), "bytes=%d-%d", &from, &to)
		if from == target && poisoned.Load() < int64(k) {
			poisoned.Add(1)
			cut := int64(16)
			if to-from+1 < cut {
				cut = to - from + 1
			}
			w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", from, to, len(data)))
			w.WriteHeader(http.StatusPartialContent)
			prefix := append([]byte(nil), data[from:from+cut]...)
			prefix[0] ^= 0x5a
			w.Write(prefix)
			w.(http.Flusher).Flush()
			panic(http.ErrAbortHandler)
		}
		http.ServeContent(w, r, "app.bin", time.Time{}, bytes.NewReader(data))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &poisoned
}

// TestFetchRangeVerifiedRestartsFromVerifiedByte is the S4 regression:
// a connection dropped after a corrupted prefix must not let the
// corruption survive the resume. Plain FetchRange resumes from the
// last received byte and happily returns the poisoned splice;
// FetchRangeVerified detects the checksum mismatch and restarts the
// whole range from its last verified byte — the range start.
func TestFetchRangeVerifiedRestartsFromVerifiedByte(t *testing.T) {
	data := testPayload(4096)
	const from, length = 512, 1024
	const k = 3
	srv, poisoned := splicingServer(t, data, from, k)

	want := data[from : from+length]
	crc := ChecksumPayload(want)

	// Demonstrate the hazard: an unverified range fetch completes with
	// the spliced garbage and no error.
	var raw bytes.Buffer
	if _, err := fastClient(3, nil).FetchRange(context.Background(), srv.URL+"/app", from, length, &raw); err != nil {
		t.Fatalf("FetchRange: %v", err)
	}
	if bytes.Equal(raw.Bytes(), want) {
		t.Fatal("server did not poison the splice; test is vacuous")
	}

	var slept []time.Duration
	c := fastClient(7, &slept)
	p, attempts, err := c.FetchRangeVerified(context.Background(), srv.URL+"/app", from, length, crc)
	if err != nil {
		t.Fatalf("FetchRangeVerified: %v", err)
	}
	if !bytes.Equal(p, want) {
		t.Fatal("verified payload does not match the planned bytes")
	}
	// The unverified demonstration above consumed one poisoning, so the
	// verified fetch hits k-1 more: k-1 restarts plus the final clean
	// attempt that verifies.
	if attempts != k {
		t.Fatalf("attempts = %d, want %d", attempts, k)
	}
	if got := poisoned.Load(); got != k {
		t.Fatalf("server poisoned %d fresh fetches, want %d", got, k)
	}
	if len(slept) == 0 {
		t.Fatal("verification restarts did not back off")
	}
	if st := c.Stats(); st.Retries == 0 {
		t.Fatalf("Stats().Retries = 0, want > 0 (restarts share the retry budget); stats %+v", st)
	}
}

// TestFetchRangeVerifiedExhaustsBudget: a range that never verifies
// must fail with ErrStreamIntegrity after the client's retry budget,
// not loop forever or return garbage.
func TestFetchRangeVerifiedExhaustsBudget(t *testing.T) {
	data := testPayload(4096)
	const from, length = 512, 1024
	srv, _ := splicingServer(t, data, from, 1<<30)

	c := fastClient(11, nil)
	c.MaxRetries = 3
	p, attempts, err := c.FetchRangeVerified(context.Background(), srv.URL+"/app", from, length, ChecksumPayload(data[from:from+length]))
	if !errors.Is(err, ErrStreamIntegrity) {
		t.Fatalf("err = %v, want ErrStreamIntegrity", err)
	}
	if p != nil {
		t.Fatal("failed verification must not return a payload")
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
}

// swappingServer serves one artifact with an ETag and can replace it
// mid-test. killAfter > 0 makes the FIRST request die abruptly after
// that many body bytes, swapping in the replacement artifact before the
// client can resume — the restart-with-new-deploy scenario.
func swappingServer(t *testing.T, a, b []byte, etagA, etagB string, killAfter int) *httptest.Server {
	t.Helper()
	type artifact struct {
		data []byte
		etag string
	}
	var cur atomic.Pointer[artifact]
	cur.Store(&artifact{a, etagA})
	var reqs atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/app", func(w http.ResponseWriter, r *http.Request) {
		p := cur.Load()
		w.Header().Set("ETag", p.etag)
		if reqs.Add(1) == 1 && killAfter > 0 {
			w.Header().Set("Content-Length", fmt.Sprint(len(p.data)))
			w.WriteHeader(http.StatusOK)
			w.Write(p.data[:killAfter])
			if fl, ok := w.(http.Flusher); ok {
				fl.Flush()
			}
			cur.Store(&artifact{b, etagB}) // the deploy lands in the gap
			panic(http.ErrAbortHandler)    // and the old process dies
		}
		http.ServeContent(w, r, "app.bin", time.Time{}, bytes.NewReader(p.data))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestFetchRefusesSpliceAfterSwap is the resume-splicing regression: the
// artifact is replaced between a mid-stream drop and the resume. The
// client pinned the first response's ETag and sent If-Range, so the
// server answers the resume with a full 200 of the NEW artifact — and
// the client, having already delivered old-artifact bytes, must fail
// with ErrArtifactChanged rather than splice the two versions together.
func TestFetchRefusesSpliceAfterSwap(t *testing.T) {
	dataA := testPayload(8 << 10)
	dataB := xrand.New(7).Bytes(8 << 10)
	const kill = 1000
	srv := swappingServer(t, dataA, dataB, `"aaaa"`, `"bbbb"`, kill)

	c := fastClient(1, nil)
	var got bytes.Buffer
	_, err := c.Fetch(context.Background(), srv.URL+"/app", &got)
	if !errors.Is(err, ErrArtifactChanged) {
		t.Fatalf("err = %v, want ErrArtifactChanged", err)
	}
	// Everything delivered is a clean prefix of the OLD artifact — not
	// one byte of the new one leaked into the stream.
	if !bytes.Equal(got.Bytes(), dataA[:got.Len()]) {
		t.Fatal("delivered bytes are not a clean prefix of the original artifact")
	}
	if got.Len() < kill {
		t.Fatalf("delivered %d bytes, want at least the %d sent before the drop", got.Len(), kill)
	}
}

// TestFetchAdoptsSwapBeforeFirstByte: when the artifact changes before
// any payload byte was delivered, there is nothing to splice — the
// client adopts the new version and the transfer succeeds with the new
// bytes.
func TestFetchAdoptsSwapBeforeFirstByte(t *testing.T) {
	dataA := testPayload(2048)
	dataB := xrand.New(9).Bytes(2048)
	// killAfter is the header-only abort: headers (with ETag A) arrive,
	// zero body bytes do. Write of 0 bytes then abort:
	type artifact struct {
		data []byte
		etag string
	}
	var cur atomic.Pointer[artifact]
	cur.Store(&artifact{dataA, `"aaaa"`})
	var reqs atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/app", func(w http.ResponseWriter, r *http.Request) {
		p := cur.Load()
		w.Header().Set("ETag", p.etag)
		if reqs.Add(1) == 1 {
			w.Header().Set("Content-Length", fmt.Sprint(len(p.data)))
			w.WriteHeader(http.StatusOK)
			if fl, ok := w.(http.Flusher); ok {
				fl.Flush()
			}
			cur.Store(&artifact{dataB, `"bbbb"`})
			panic(http.ErrAbortHandler)
		}
		http.ServeContent(w, r, "app.bin", time.Time{}, bytes.NewReader(p.data))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c := fastClient(1, nil)
	var got bytes.Buffer
	if _, err := c.Fetch(context.Background(), srv.URL+"/app", &got); err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if !bytes.Equal(got.Bytes(), dataB) {
		t.Fatal("client did not adopt the new artifact cleanly")
	}
}

// TestFetchRangeVerifiedSurvivesSwap: a demand fetch interrupted by a
// deploy restarts the whole range against the new artifact with a fresh
// pin, and verifies against the caller's checksum.
func TestFetchRangeVerifiedSurvivesSwap(t *testing.T) {
	dataA := testPayload(8 << 10)
	dataB := xrand.New(11).Bytes(8 << 10)
	srv := swappingServer(t, dataA, dataB, `"aaaa"`, `"bbbb"`, 600)

	const from, length = 512, 1024
	want := dataB[from : from+length]
	c := fastClient(5, nil)
	p, attempts, err := c.FetchRangeVerified(context.Background(), srv.URL+"/app", from, length, ChecksumPayload(want))
	if err != nil {
		t.Fatalf("FetchRangeVerified: %v", err)
	}
	if !bytes.Equal(p, want) {
		t.Fatal("verified payload is not the new artifact's range")
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one swap restart + one clean fetch)", attempts)
	}
}

// TestFetchHonorsRetryAfter: a shedding server's Retry-After hint
// replaces the client's computed backoff.
func TestFetchHonorsRetryAfter(t *testing.T) {
	data := testPayload(1024)
	var reqs atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/app", func(w http.ResponseWriter, r *http.Request) {
		if reqs.Add(1) == 1 {
			w.Header().Set("Retry-After", "7")
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		http.ServeContent(w, r, "app.bin", time.Time{}, bytes.NewReader(data))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var slept []time.Duration
	c := fastClient(1, &slept)
	var got bytes.Buffer
	if _, err := c.Fetch(context.Background(), srv.URL+"/app", &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), data) {
		t.Fatal("content mismatch after shed retry")
	}
	if len(slept) == 0 || slept[0] != 7*time.Second {
		t.Fatalf("slept %v, want the server's 7s Retry-After hint first", slept)
	}
}

// TestParseRetryAfter pins both RFC 9110 Retry-After forms. The header
// can be delta-seconds or an HTTP-date; either way the result is a
// delay clamped to maxRetryAfter, and anything unusable — garbage,
// negatives, dates already in the past — yields 0 so the client falls
// back to its own backoff schedule.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		h    string
		want time.Duration
	}{
		{"delta-seconds", "7", 7 * time.Second},
		{"delta-whitespace", "  7 ", 7 * time.Second},
		{"delta-zero", "0", 0},
		{"delta-negative", "-3", 0},
		{"delta-clamped", "86400", maxRetryAfter},
		// A delta large enough to overflow int64 nanoseconds must clamp,
		// not wrap negative and vanish.
		{"delta-overflow", "9223372036854775807", maxRetryAfter},
		{"date-future", now.Add(10 * time.Second).UTC().Format(http.TimeFormat), 10 * time.Second},
		{"date-clamped", now.Add(10 * time.Minute).UTC().Format(http.TimeFormat), maxRetryAfter},
		{"date-past", now.Add(-10 * time.Second).UTC().Format(http.TimeFormat), 0},
		// RFC 850 and ANSI C asctime are the obsolete-but-required date
		// forms; net/http.ParseTime accepts both.
		{"date-rfc850", "Saturday, 08-Aug-26 12:00:10 GMT", 10 * time.Second},
		{"date-asctime", "Sat Aug  8 12:00:10 2026", 10 * time.Second},
		{"garbage", "soon", 0},
		{"empty", "", 0},
		{"blank", "   ", 0},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.h, now); got != tc.want {
			t.Errorf("%s: parseRetryAfter(%q) = %v, want %v", tc.name, tc.h, got, tc.want)
		}
	}
}

// TestFetchHonorsRetryAfterDate is the end-to-end regression for the
// HTTP-date form: a shedding server that speaks the date dialect used
// to be ignored entirely (the client fell back to millisecond
// exponential backoff and hammered it); now the hint is honored like
// delta-seconds is.
func TestFetchHonorsRetryAfterDate(t *testing.T) {
	data := testPayload(1024)
	var reqs atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/app", func(w http.ResponseWriter, r *http.Request) {
		if reqs.Add(1) == 1 {
			w.Header().Set("Retry-After", time.Now().Add(20*time.Second).UTC().Format(http.TimeFormat))
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		http.ServeContent(w, r, "app.bin", time.Time{}, bytes.NewReader(data))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var slept []time.Duration
	c := fastClient(1, &slept)
	var got bytes.Buffer
	if _, err := c.Fetch(context.Background(), srv.URL+"/app", &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), data) {
		t.Fatal("content mismatch after shed retry")
	}
	// The date is resolved against the clock at parse time, so allow
	// the request's round trip; anything between 15s and 20s proves the
	// hint was used (the default backoff base is 100ms).
	if len(slept) == 0 || slept[0] < 15*time.Second || slept[0] > 20*time.Second {
		t.Fatalf("slept %v, want roughly the server's 20s Retry-After date first", slept)
	}
}
