package stream

import "sync"

// Buffer pools for the transfer hot paths. The fetch client's skip path,
// the fault layer's corruption copy, and the loader's unit assembly all
// used to allocate a fresh buffer per call; under a concurrent server
// those allocations dominate the serve profile, so they are recycled
// here. Buffers above maxPooledBuf are left to the garbage collector —
// pooling them would pin rare worst-case allocations forever.
const maxPooledBuf = 1 << 20

// copyBufSize is the scratch size for skip/copy loops (matches
// io.Copy's internal buffer).
const copyBufSize = 32 * 1024

// copyBufPool recycles fixed-size scratch buffers for byte-discard and
// corruption-copy loops. Get returns a *[]byte of exactly copyBufSize.
var copyBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, copyBufSize)
		return &b
	},
}

// payloadPool recycles variable-size unit-payload buffers for the
// loader. A pooled buffer may only be returned when nothing retains a
// slice of it — installed units keep their payload forever and must
// never be put back.
var payloadPool sync.Pool

// getPayloadBuf returns a buffer of length n, reusing a pooled one when
// its capacity suffices.
func getPayloadBuf(n int) []byte {
	if v := payloadPool.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= n {
			return b[:n]
		}
		// Too small for this unit but still fine for smaller ones: put
		// it back. Dropping it here silently drains the pool whenever
		// unit sizes are mixed — every large unit costs one pooled small
		// buffer and the steady state degenerates to make-per-unit.
		payloadPool.Put(v)
	}
	return make([]byte, n)
}

// putPayloadBuf recycles a buffer obtained from getPayloadBuf. Callers
// must guarantee no live references into b remain.
func putPayloadBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	payloadPool.Put(&b)
}
