package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// The stream is exposed to a hostile or lossy link by design: the whole
// point of non-strict execution is to install and run code *before* the
// transfer finishes, so a flipped bit would otherwise go straight into
// the VM. Every unit therefore carries a CRC32C of its payload plus a
// 16-bit check over its own header, and the stream opens with a fixed
// header naming the unit count and a whole-stream digest. The loader
// verifies each unit on arrival, quarantines what fails, and (when a
// Repair hook is installed) re-fetches the damaged bytes by range with
// bounded retries instead of installing garbage.

// crcTable is the Castagnoli polynomial table shared by every checksum
// in the format (CRC32C, the same polynomial iSCSI and ext4 use).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ChecksumPayload returns the CRC32C of a unit payload — the value the
// unit header and the TOC carry for it.
func ChecksumPayload(p []byte) uint32 { return crc32.Checksum(p, crcTable) }

// Stream header layout: magic "NSV2" (4) | version (1) | reserved (1) |
// unit count u32 | stream digest u32 | header CRC32C u32 = 18 bytes.
// The digest covers every unit header and payload that follows, so a
// stream whose per-unit checks all pass is additionally verified end to
// end at EOF.
const (
	streamMagic      = "NSV2"
	streamVersion    = 2
	streamHeaderSize = 18
)

// ErrStreamIntegrity marks checksum and digest failures: the bytes
// arrived with valid framing but do not match what the writer emitted.
var ErrStreamIntegrity = errors.New("stream: integrity violation")

func putStreamHeader(b []byte, count int, digest uint32) {
	copy(b[0:4], streamMagic)
	b[4] = streamVersion
	b[5] = 0
	binary.BigEndian.PutUint32(b[6:], uint32(count))
	binary.BigEndian.PutUint32(b[10:], digest)
	binary.BigEndian.PutUint32(b[14:], crc32.Checksum(b[:14], crcTable))
}

func parseStreamHeader(b []byte) (count int, digest uint32, err error) {
	if string(b[0:4]) != streamMagic {
		return 0, 0, fmt.Errorf("%w: bad magic %q", ErrBadStream, b[0:4])
	}
	if b[4] != streamVersion {
		return 0, 0, fmt.Errorf("%w: unsupported stream version %d", ErrBadStream, b[4])
	}
	if got, want := crc32.Checksum(b[:14], crcTable), binary.BigEndian.Uint32(b[14:]); got != want {
		return 0, 0, fmt.Errorf("%w: stream header check failed (%08x != %08x)", ErrStreamIntegrity, got, want)
	}
	return int(binary.BigEndian.Uint32(b[6:])), binary.BigEndian.Uint32(b[10:]), nil
}

// Unit header layout: class u16 | kind u8 | payload len u32 | payload
// CRC32C u32 | header check u16 (low bits of the CRC32C over the first
// 11 bytes) = 13 bytes. The header check keeps a corrupted length field
// from silently desyncing the framing of everything after it.
func putUnitHeader(hdr []byte, class int, kind byte, n int, crc uint32) {
	binary.BigEndian.PutUint16(hdr[0:], uint16(class))
	hdr[2] = kind
	binary.BigEndian.PutUint32(hdr[3:], uint32(n))
	binary.BigEndian.PutUint32(hdr[7:], crc)
	binary.BigEndian.PutUint16(hdr[11:], uint16(crc32.Checksum(hdr[:11], crcTable)))
}

func parseUnitHeader(hdr []byte) (class int, kind byte, n int, crc uint32, err error) {
	if got, want := uint16(crc32.Checksum(hdr[:11], crcTable)), binary.BigEndian.Uint16(hdr[11:]); got != want {
		return 0, 0, 0, 0, fmt.Errorf("%w: unit header check failed (%04x != %04x)", ErrStreamIntegrity, got, want)
	}
	return int(binary.BigEndian.Uint16(hdr[0:])), hdr[2],
		int(binary.BigEndian.Uint32(hdr[3:])), binary.BigEndian.Uint32(hdr[7:]), nil
}

// RepairRequest identifies one corrupt unit the loader wants re-fetched:
// the payload that arrived in the main stream failed its checksum. A
// repair hook returns a fresh copy of the payload (typically via a
// byte-range request against the writer's unit table); the loader
// re-verifies it against CRC before installing.
type RepairRequest struct {
	// Class is the unit's class index; Kind is KindGlobal or KindBody;
	// Body is the body index within the class (-1 for globals).
	Class int
	Kind  byte
	Body  int
	// Len is the expected payload length and CRC its expected checksum,
	// both taken from the (header-checked) unit header.
	Len int
	CRC uint32
	// Attempt is the 1-based repair attempt number.
	Attempt int
}

// QuarantinedUnit records a unit whose payload failed its checksum and
// could not be repaired. The unit is skipped — never installed — and the
// stream continues; a demand-fetching client can still deliver a clean
// copy later through FeedDemand.
type QuarantinedUnit struct {
	Class int
	Kind  byte
	Body  int // body index; -1 for globals
	Len   int
	CRC   uint32
}

// quarKey identifies a quarantined unit for exactly-once bookkeeping.
type quarKey struct {
	class int
	kind  byte
	body  int
}

// IntegrityStats is a snapshot of the loader's verification counters.
type IntegrityStats struct {
	// CorruptUnits counts main-stream units whose payload failed its
	// checksum on arrival.
	CorruptUnits int64
	// RepairAttempts counts repair-hook invocations; Repaired counts the
	// units a repair delivered with a valid checksum.
	RepairAttempts int64
	Repaired       int64
	// Quarantined counts units abandoned after repair failed (or no
	// repair hook was available in degraded mode); Outstanding is how
	// many remain uninstalled right now (a later demand fetch clears
	// them).
	Quarantined int64
	Outstanding int
	// DigestVerified reports that the whole-stream digest was checked at
	// EOF and matched. It stays false while the stream is in flight and
	// when quarantined units made the canonical digest unreconstructable.
	DigestVerified bool
}
