package stream

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"strings"
	"testing"

	"nonstrict/internal/apps"
	"nonstrict/internal/cfg"
	"nonstrict/internal/classfile"
	"nonstrict/internal/jir"
	"nonstrict/internal/reorder"
	"nonstrict/internal/restructure"
	"nonstrict/internal/vm"
)

// plan builds a restructured benchmark and its stream writer.
func plan(t testing.TB, name string) (*apps.App, *classfile.Program, *classfile.Index, *Writer) {
	t.Helper()
	app, err := apps.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := jir.Compile(app.IR)
	if err != nil {
		t.Fatal(err)
	}
	ix := prog.IndexMethods()
	graphs, err := cfg.BuildAll(ix)
	if err != nil {
		t.Fatal(err)
	}
	ord, err := reorder.Static(ix, graphs)
	if err != nil {
		t.Fatal(err)
	}
	rp := restructure.Apply(prog, ix, ord)
	w, err := NewWriter(rp, ix, ord)
	if err != nil {
		t.Fatal(err)
	}
	return app, rp, ix, w
}

func TestRoundTripAndExecute(t *testing.T) {
	app, rp, ix, w := plan(t, "Hanoi")

	var buf bytes.Buffer
	n, err := w.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != w.Size() || int64(buf.Len()) != n {
		t.Fatalf("wrote %d bytes, Size says %d, buffer has %d", n, w.Size(), buf.Len())
	}

	l := NewLoader(rp.Name, rp.MainClass, nil)
	var events []Event
	if err := l.Load(&buf, func(e Event) { events = append(events, e) }); err != nil {
		t.Fatal(err)
	}

	// Event structure: one ClassLinked + ClassComplete per class, one
	// MethodReady per method; every class's link precedes its methods;
	// Bytes is non-decreasing.
	var linked, ready, complete int
	linkedSet := map[string]bool{}
	var prevBytes int64
	for _, e := range events {
		if e.Bytes < prevBytes {
			t.Fatalf("event bytes went backwards: %+v", e)
		}
		prevBytes = e.Bytes
		switch e.Kind {
		case ClassLinked:
			linked++
			linkedSet[e.Class] = true
		case MethodReady:
			ready++
			if !linkedSet[e.Class] {
				t.Fatalf("method %v ready before class linked", e.Method)
			}
		case ClassComplete:
			complete++
		}
	}
	if linked != len(rp.Classes) || complete != len(rp.Classes) {
		t.Errorf("linked %d, complete %d, classes %d", linked, complete, len(rp.Classes))
	}
	if ready != ix.Len() {
		t.Errorf("ready %d, methods %d", ready, ix.Len())
	}

	// The first MethodReady is main: that is the non-strict invocation
	// point.
	for _, e := range events {
		if e.Kind == MethodReady {
			if e.Method != rp.Main() {
				t.Errorf("first ready method %v, want %v", e.Method, rp.Main())
			}
			if e.Bytes >= w.Size() {
				t.Error("main only ready at end of stream")
			}
			break
		}
	}

	// The assembled program runs and passes the workload self-check.
	got, err := l.Program()
	if err != nil {
		t.Fatal(err)
	}
	ln, err := vm.Link(got)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ln.Run(vm.Options{Args: app.TestArgs, MaxSteps: 1e8})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Check(m, false); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalResolver(t *testing.T) {
	_, rp, _, w := plan(t, "Hanoi")
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Verify each method against the loader's own incremental state.
	l := NewLoader(rp.Name, rp.MainClass, nil)
	l.resolver = l.Resolver()
	if err := l.Load(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Program(); err != nil {
		t.Fatal(err)
	}
}

// unitAt walks a well-formed stream and returns the header offset, kind,
// and payload length of unit i.
func unitAt(t *testing.T, data []byte, i int) (off int, kind byte, n int) {
	t.Helper()
	off = streamHeaderSize
	for {
		_, k, ln, _, err := parseUnitHeader(data[off : off+headerSize])
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			return off, k, ln
		}
		i--
		off += headerSize + ln
	}
}

// resealStreamHeader recomputes the stream header's self-check after a
// test mutates one of its fields.
func resealStreamHeader(b []byte) {
	binary.BigEndian.PutUint32(b[14:], crc32.Checksum(b[:14], crcTable))
}

func TestLoaderRejectsMalformedStreams(t *testing.T) {
	_, rp, _, w := plan(t, "Hanoi")
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	load := func(data []byte) error {
		l := NewLoader(rp.Name, rp.MainClass, nil)
		return l.Load(bytes.NewReader(data), nil)
	}

	t.Run("truncated-mid-unit", func(t *testing.T) {
		if err := load(good[:len(good)/2]); err == nil {
			t.Error("accepted truncated stream")
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		mut := append([]byte(nil), good...)
		mut[0] ^= 0xFF
		if err := load(mut); err == nil || !errors.Is(err, ErrBadStream) {
			t.Errorf("err = %v, want ErrBadStream", err)
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		mut := append([]byte(nil), good...)
		mut[4] = 99
		resealStreamHeader(mut)
		if err := load(mut); err == nil || !errors.Is(err, ErrBadStream) {
			t.Errorf("err = %v, want ErrBadStream", err)
		}
	})
	t.Run("corrupt-stream-header", func(t *testing.T) {
		mut := append([]byte(nil), good...)
		mut[6] ^= 0x40 // damage the unit count without resealing
		if err := load(mut); err == nil || !errors.Is(err, ErrStreamIntegrity) {
			t.Errorf("err = %v, want ErrStreamIntegrity", err)
		}
	})
	t.Run("unit-count-mismatch", func(t *testing.T) {
		mut := append([]byte(nil), good...)
		binary.BigEndian.PutUint32(mut[6:], uint32(w.Units()+1))
		resealStreamHeader(mut)
		if err := load(mut); err == nil || !errors.Is(err, ErrBadStream) {
			t.Errorf("err = %v, want ErrBadStream", err)
		}
	})
	t.Run("digest-mismatch", func(t *testing.T) {
		mut := append([]byte(nil), good...)
		binary.BigEndian.PutUint32(mut[10:], binary.BigEndian.Uint32(mut[10:])^0xDEAD)
		resealStreamHeader(mut)
		if err := load(mut); err == nil || !errors.Is(err, ErrStreamIntegrity) {
			t.Errorf("err = %v, want ErrStreamIntegrity", err)
		}
	})
	t.Run("body-before-global", func(t *testing.T) {
		// Splice out the first unit (a global): stream header, then the
		// stream from the second unit's header on. Its body unit now has
		// no global.
		_, _, n := unitAt(t, good, 0)
		mut := append([]byte(nil), good[:streamHeaderSize]...)
		mut = append(mut, good[streamHeaderSize+headerSize+n:]...)
		if err := load(mut); err == nil {
			t.Error("accepted body before global")
		}
	})
	t.Run("bad-kind", func(t *testing.T) {
		// Rewrite the first unit's kind — resealing the header check, so
		// the framing is valid and the kind itself is what gets rejected.
		mut := append([]byte(nil), good...)
		off, _, n := unitAt(t, good, 0)
		class, _, _, crc, err := parseUnitHeader(good[off : off+headerSize])
		if err != nil {
			t.Fatal(err)
		}
		putUnitHeader(mut[off:off+headerSize], class, 9, n, crc)
		if err := load(mut); err == nil || !errors.Is(err, ErrBadStream) {
			t.Errorf("err = %v, want ErrBadStream", err)
		}
	})
	t.Run("corrupt-unit-header", func(t *testing.T) {
		// A flipped bit in a unit header desyncs all later framing; with
		// no in-stream resync possible this must be terminal.
		mut := append([]byte(nil), good...)
		off, _, _ := unitAt(t, good, 0)
		mut[off+3] ^= 0x01 // high byte of the length field
		if err := load(mut); err == nil || !errors.Is(err, ErrStreamIntegrity) {
			t.Errorf("err = %v, want ErrStreamIntegrity", err)
		}
	})
	t.Run("corrupt-delimiter", func(t *testing.T) {
		// A flipped payload byte (here a body's trailing delimiter) fails
		// the unit checksum; with no repair path that is terminal.
		mut := append([]byte(nil), good...)
		for i := 0; ; i++ {
			off, kind, n := unitAt(t, good, i)
			if kind == KindBody {
				mut[off+headerSize+n-1] ^= 0xFF
				break
			}
		}
		if err := load(mut); err == nil || !errors.Is(err, ErrStreamIntegrity) {
			t.Errorf("err = %v, want ErrStreamIntegrity", err)
		}
	})
	t.Run("incomplete-program", func(t *testing.T) {
		// A clean cut between units used to slip past the loader and only
		// surface in Program(); the stream header's unit count catches it
		// at EOF now.
		off, _, n := unitAt(t, good, 1)
		err := load(good[:off+headerSize+n])
		if err == nil || !errors.Is(err, ErrBadStream) {
			t.Errorf("err = %v, want ErrBadStream for truncation at a unit boundary", err)
		}
	})
}

func TestWriterRejectsUnrestructured(t *testing.T) {
	app, err := apps.ByName("Hanoi")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := jir.Compile(app.IR)
	if err != nil {
		t.Fatal(err)
	}
	ix := prog.IndexMethods()
	graphs, err := cfg.BuildAll(ix)
	if err != nil {
		t.Fatal(err)
	}
	ord, err := reorder.Static(ix, graphs)
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately skip restructure.Apply: the declaration order in the
	// files disagrees with the first-use order.
	if _, err := NewWriter(prog, ix, ord); err == nil || !strings.Contains(err.Error(), "restructured") {
		t.Fatalf("err = %v, want restructuring complaint", err)
	}
}

func TestAllBenchmarksStream(t *testing.T) {
	for _, name := range []string{"Hanoi", "TestDes", "JHLZip", "JavaCup", "Jess", "BIT"} {
		name := name
		t.Run(name, func(t *testing.T) {
			app, rp, _, w := plan(t, name)
			pr, pw := io.Pipe()
			go func() {
				_, err := w.WriteTo(pw)
				pw.CloseWithError(err)
			}()
			l := NewLoader(rp.Name, rp.MainClass, nil)
			if err := l.Load(pr, nil); err != nil {
				t.Fatal(err)
			}
			got, err := l.Program()
			if err != nil {
				t.Fatal(err)
			}
			ln, err := vm.Link(got)
			if err != nil {
				t.Fatal(err)
			}
			m, err := ln.Run(vm.Options{Args: app.TestArgs, MaxSteps: 5e8})
			if err != nil {
				t.Fatal(err)
			}
			if err := app.Check(m, false); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWriterRejectsTooManyClasses is the regression test for the silent
// uint16 truncation: the unit header's class index cannot address a
// 65,536th class, so NewWriter must refuse rather than emit headers that
// alias class 0.
func TestWriterRejectsTooManyClasses(t *testing.T) {
	p := &classfile.Program{Name: "big", Classes: make([]*classfile.Class, MaxClasses+1)}
	_, err := NewWriter(p, nil, nil)
	if err == nil {
		t.Fatal("program with 65536 classes accepted")
	}
	if !strings.Contains(err.Error(), "65535") {
		t.Errorf("error %v does not state the class-index limit", err)
	}
}
