package stream

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"nonstrict/internal/apps"
	"nonstrict/internal/cfg"
	"nonstrict/internal/classfile"
	"nonstrict/internal/jir"
	"nonstrict/internal/reorder"
	"nonstrict/internal/restructure"
	"nonstrict/internal/vm"
)

// plan builds a restructured benchmark and its stream writer.
func plan(t *testing.T, name string) (*apps.App, *classfile.Program, *classfile.Index, *Writer) {
	t.Helper()
	app, err := apps.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := jir.Compile(app.IR)
	if err != nil {
		t.Fatal(err)
	}
	ix := prog.IndexMethods()
	graphs, err := cfg.BuildAll(ix)
	if err != nil {
		t.Fatal(err)
	}
	ord, err := reorder.Static(ix, graphs)
	if err != nil {
		t.Fatal(err)
	}
	rp := restructure.Apply(prog, ix, ord)
	w, err := NewWriter(rp, ix, ord)
	if err != nil {
		t.Fatal(err)
	}
	return app, rp, ix, w
}

func TestRoundTripAndExecute(t *testing.T) {
	app, rp, ix, w := plan(t, "Hanoi")

	var buf bytes.Buffer
	n, err := w.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != w.Size() || int64(buf.Len()) != n {
		t.Fatalf("wrote %d bytes, Size says %d, buffer has %d", n, w.Size(), buf.Len())
	}

	l := NewLoader(rp.Name, rp.MainClass, nil)
	var events []Event
	if err := l.Load(&buf, func(e Event) { events = append(events, e) }); err != nil {
		t.Fatal(err)
	}

	// Event structure: one ClassLinked + ClassComplete per class, one
	// MethodReady per method; every class's link precedes its methods;
	// Bytes is non-decreasing.
	var linked, ready, complete int
	linkedSet := map[string]bool{}
	var prevBytes int64
	for _, e := range events {
		if e.Bytes < prevBytes {
			t.Fatalf("event bytes went backwards: %+v", e)
		}
		prevBytes = e.Bytes
		switch e.Kind {
		case ClassLinked:
			linked++
			linkedSet[e.Class] = true
		case MethodReady:
			ready++
			if !linkedSet[e.Class] {
				t.Fatalf("method %v ready before class linked", e.Method)
			}
		case ClassComplete:
			complete++
		}
	}
	if linked != len(rp.Classes) || complete != len(rp.Classes) {
		t.Errorf("linked %d, complete %d, classes %d", linked, complete, len(rp.Classes))
	}
	if ready != ix.Len() {
		t.Errorf("ready %d, methods %d", ready, ix.Len())
	}

	// The first MethodReady is main: that is the non-strict invocation
	// point.
	for _, e := range events {
		if e.Kind == MethodReady {
			if e.Method != rp.Main() {
				t.Errorf("first ready method %v, want %v", e.Method, rp.Main())
			}
			if e.Bytes >= w.Size() {
				t.Error("main only ready at end of stream")
			}
			break
		}
	}

	// The assembled program runs and passes the workload self-check.
	got, err := l.Program()
	if err != nil {
		t.Fatal(err)
	}
	ln, err := vm.Link(got)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ln.Run(vm.Options{Args: app.TestArgs, MaxSteps: 1e8})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Check(m, false); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalResolver(t *testing.T) {
	_, rp, _, w := plan(t, "Hanoi")
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Verify each method against the loader's own incremental state.
	l := NewLoader(rp.Name, rp.MainClass, nil)
	l.resolver = l.Resolver()
	if err := l.Load(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Program(); err != nil {
		t.Fatal(err)
	}
}

func TestLoaderRejectsMalformedStreams(t *testing.T) {
	_, rp, _, w := plan(t, "Hanoi")
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	load := func(data []byte) error {
		l := NewLoader(rp.Name, rp.MainClass, nil)
		return l.Load(bytes.NewReader(data), nil)
	}

	t.Run("truncated-mid-unit", func(t *testing.T) {
		if err := load(good[:len(good)/2]); err == nil {
			t.Error("accepted truncated stream")
		}
	})
	t.Run("body-before-global", func(t *testing.T) {
		// Skip the first unit (a global) and feed from the next header.
		// The next unit's class has no global yet.
		n := int(uint32(good[3])<<24 | uint32(good[4])<<16 | uint32(good[5])<<8 | uint32(good[6]))
		if err := load(good[headerSize+n:]); err == nil {
			t.Error("accepted body before global")
		}
	})
	t.Run("bad-kind", func(t *testing.T) {
		mut := append([]byte(nil), good...)
		mut[2] = 9
		err := load(mut)
		if err == nil || !errors.Is(err, ErrBadStream) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("corrupt-delimiter", func(t *testing.T) {
		mut := append([]byte(nil), good...)
		// Find a body unit and break its final delimiter byte: walk units.
		off := 0
		for off+headerSize <= len(mut) {
			kind := mut[off+2]
			n := int(uint32(mut[off+3])<<24 | uint32(mut[off+4])<<16 | uint32(mut[off+5])<<8 | uint32(mut[off+6]))
			if kind == KindBody {
				mut[off+headerSize+n-1] ^= 0xFF
				break
			}
			off += headerSize + n
		}
		if err := load(mut); err == nil {
			t.Error("accepted corrupt delimiter")
		}
	})
	t.Run("incomplete-program", func(t *testing.T) {
		// Cut the stream cleanly between units: after the first two.
		off := 0
		for i := 0; i < 2; i++ {
			n := int(uint32(good[off+3])<<24 | uint32(good[off+4])<<16 | uint32(good[off+5])<<8 | uint32(good[off+6]))
			off += headerSize + n
		}
		l := NewLoader(rp.Name, rp.MainClass, nil)
		if err := l.Load(bytes.NewReader(good[:off]), nil); err != nil {
			t.Fatalf("clean prefix rejected: %v", err)
		}
		if _, err := l.Program(); err == nil {
			t.Error("assembled a program with missing bodies")
		}
	})
}

func TestWriterRejectsUnrestructured(t *testing.T) {
	app, err := apps.ByName("Hanoi")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := jir.Compile(app.IR)
	if err != nil {
		t.Fatal(err)
	}
	ix := prog.IndexMethods()
	graphs, err := cfg.BuildAll(ix)
	if err != nil {
		t.Fatal(err)
	}
	ord, err := reorder.Static(ix, graphs)
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately skip restructure.Apply: the declaration order in the
	// files disagrees with the first-use order.
	if _, err := NewWriter(prog, ix, ord); err == nil || !strings.Contains(err.Error(), "restructured") {
		t.Fatalf("err = %v, want restructuring complaint", err)
	}
}

func TestAllBenchmarksStream(t *testing.T) {
	for _, name := range []string{"Hanoi", "TestDes", "JHLZip", "JavaCup", "Jess", "BIT"} {
		name := name
		t.Run(name, func(t *testing.T) {
			app, rp, _, w := plan(t, name)
			pr, pw := io.Pipe()
			go func() {
				_, err := w.WriteTo(pw)
				pw.CloseWithError(err)
			}()
			l := NewLoader(rp.Name, rp.MainClass, nil)
			if err := l.Load(pr, nil); err != nil {
				t.Fatal(err)
			}
			got, err := l.Program()
			if err != nil {
				t.Fatal(err)
			}
			ln, err := vm.Link(got)
			if err != nil {
				t.Fatal(err)
			}
			m, err := ln.Run(vm.Options{Args: app.TestArgs, MaxSteps: 5e8})
			if err != nil {
				t.Fatal(err)
			}
			if err := app.Check(m, false); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWriterRejectsTooManyClasses is the regression test for the silent
// uint16 truncation: the unit header's class index cannot address a
// 65,536th class, so NewWriter must refuse rather than emit headers that
// alias class 0.
func TestWriterRejectsTooManyClasses(t *testing.T) {
	p := &classfile.Program{Name: "big", Classes: make([]*classfile.Class, MaxClasses+1)}
	_, err := NewWriter(p, nil, nil)
	if err == nil {
		t.Fatal("program with 65536 classes accepted")
	}
	if !strings.Contains(err.Error(), "65535") {
		t.Errorf("error %v does not state the class-index limit", err)
	}
}
