package stream

import (
	"bytes"
	"io"
	"runtime/debug"
	"testing"
	"time"
)

// TestDiscardNZeroAlloc: the skip path must not allocate per call — the
// 32 KiB scratch comes from the pool. Run through AllocsPerRun so the
// regression (a fresh make per call) fails loudly.
func TestDiscardNZeroAlloc(t *testing.T) {
	data := make([]byte, 128*1024)
	r := bytes.NewReader(data)
	wd := time.AfterFunc(time.Hour, func() {})
	defer wd.Stop()
	// Warm the pool outside the measured runs.
	if err := discardN(r, int64(len(data)), wd, time.Hour); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		r.Seek(0, io.SeekStart)
		if err := discardN(r, int64(len(data)), wd, time.Hour); err != nil {
			t.Fatal(err)
		}
	})
	if allocs >= 1 {
		t.Errorf("discardN allocates %.1f objects per 128 KiB skip, want 0 (pooled buffer)", allocs)
	}
}

// TestPayloadPoolRoundTrip: pooled buffers come back at the requested
// length, oversized buffers are not pooled, and a recycled buffer is
// reused when its capacity suffices.
func TestPayloadPoolRoundTrip(t *testing.T) {
	b := getPayloadBuf(100)
	if len(b) != 100 {
		t.Fatalf("len = %d, want 100", len(b))
	}
	putPayloadBuf(b)
	c := getPayloadBuf(50)
	if len(c) != 50 {
		t.Fatalf("len = %d, want 50", len(c))
	}
	// Buffers above the pool bound must be dropped, not pinned.
	big := make([]byte, maxPooledBuf+1)
	putPayloadBuf(big) // must not panic, must not poison the pool
	d := getPayloadBuf(10)
	if len(d) != 10 {
		t.Fatalf("len = %d, want 10", len(d))
	}
}

// TestPayloadPoolKeepsUndersizedBuffer is the mixed-unit-size regression
// test: a pooled buffer too small for the current request must go back
// to the pool, not be dropped. Before the fix every large unit silently
// consumed one pooled small buffer, so a stream alternating small and
// large units degenerated to an allocation per unit.
func TestPayloadPoolKeepsUndersizedBuffer(t *testing.T) {
	// A GC between Put and Get may legitimately clear the pool; disable
	// it so the identity check below is deterministic.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	// Drain anything earlier tests left behind so the only pooled buffer
	// is the one this test plants.
	for payloadPool.Get() != nil {
	}
	// Under -race, sync.Pool randomly drops a fraction of Puts, so no
	// single attempt can assert reuse. One observed reuse proves the fix
	// (the pre-fix code frees the planted buffer on every attempt, so it
	// can never pass); the attempt bound makes a missing Put fail with
	// overwhelming probability.
	for attempt := 0; attempt < 100; attempt++ {
		small := getPayloadBuf(64)
		putPayloadBuf(small)
		// A request the pooled buffer cannot satisfy: it must go back to
		// the pool, and the request be served by a fresh allocation.
		big := getPayloadBuf(maxPooledBuf)
		if len(big) != maxPooledBuf {
			t.Fatalf("len = %d, want %d", len(big), maxPooledBuf)
		}
		again := getPayloadBuf(64)
		if len(again) != 64 {
			t.Fatalf("len = %d, want 64", len(again))
		}
		if &again[0] == &small[0] {
			return // the undersized buffer survived the larger request
		}
	}
	t.Fatal("undersized pooled buffer was dropped by the larger request instead of returned to the pool")
}

// BenchmarkDiscardN measures the pooled skip path; run with -benchmem to
// see the allocation win (0 B/op versus 32768 B/op for a fresh buffer
// per call before pooling).
func BenchmarkDiscardN(b *testing.B) {
	data := make([]byte, 256*1024)
	r := bytes.NewReader(data)
	wd := time.AfterFunc(time.Hour, func() {})
	defer wd.Stop()
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		r.Seek(0, io.SeekStart)
		if err := discardN(r, int64(len(data)), wd, time.Hour); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoaderDuplicateBodies measures the pooled payload path on the
// units that can be recycled: a loader that has already demand-fetched
// every unit sees the main stream's copies as duplicates and returns
// each buffer to the pool instead of leaking one allocation per unit.
func BenchmarkLoaderDuplicateBodies(b *testing.B) {
	app, _, _, w := plan(b, "Hanoi")
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	streamBytes := buf.Bytes()
	toc := w.TOC()
	b.ReportAllocs()
	b.SetBytes(int64(len(streamBytes)))
	for i := 0; i < b.N; i++ {
		l := NewLoader("bench", app.IR.Main, nil)
		// Deliver everything via the demand path first…
		for _, u := range toc {
			payload := streamBytes[u.Off : u.Off+int64(u.Len)]
			if _, err := l.FeedDemand(u.Class, u.Kind, u.Body, payload, u.CRC); err != nil {
				b.Fatal(err)
			}
		}
		// …then the whole main stream arrives as duplicates.
		if err := l.Load(bytes.NewReader(streamBytes), nil); err != nil {
			b.Fatal(err)
		}
	}
}
