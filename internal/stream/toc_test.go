package stream

import (
	"strings"
	"testing"
)

// TestParseTOCRoundTrip: the writer's own table must parse back clean.
func TestParseTOCRoundTrip(t *testing.T) {
	_, _, _, w := plan(t, "Hanoi")
	data, err := MarshalTOC(w.TOC())
	if err != nil {
		t.Fatal(err)
	}
	toc, err := ParseTOC(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(toc) != w.Units() {
		t.Fatalf("parsed %d units, writer planned %d", len(toc), w.Units())
	}
}

// TestParseTOCRejectsBadGeometry feeds ParseTOC tables whose entries a
// demand-fetching client would turn straight into byte-range requests:
// each must be rejected, naming the offending entry.
func TestParseTOCRejectsBadGeometry(t *testing.T) {
	_, _, _, w := plan(t, "Hanoi")
	good := w.TOC()
	if len(good) < 3 {
		t.Fatal("need at least 3 units for the mutations below")
	}

	clone := func() []UnitInfo { return append([]UnitInfo(nil), good...) }
	tests := []struct {
		name    string
		mutate  func([]UnitInfo) []UnitInfo
		wantErr string
	}{
		{"unknown-kind", func(toc []UnitInfo) []UnitInfo {
			toc[1].Kind = 7
			return toc
		}, "unknown kind"},
		{"class-out-of-range", func(toc []UnitInfo) []UnitInfo {
			toc[1].Class = -1
			return toc
		}, "class index"},
		{"global-with-body-index", func(toc []UnitInfo) []UnitInfo {
			toc[0].Body = 0
			return toc
		}, "global unit with body index"},
		{"body-with-negative-index", func(toc []UnitInfo) []UnitInfo {
			toc[1].Body = -3
			return toc
		}, "body unit with body index"},
		{"zero-length", func(toc []UnitInfo) []UnitInfo {
			toc[1].Len = 0
			return toc
		}, "payload length"},
		{"negative-length", func(toc []UnitInfo) []UnitInfo {
			toc[1].Len = -5
			return toc
		}, "payload length"},
		{"oversized-length", func(toc []UnitInfo) []UnitInfo {
			toc[1].Len = maxUnitSize + 1
			return toc
		}, "payload length"},
		{"wrong-first-offset", func(toc []UnitInfo) []UnitInfo {
			toc[0].Off = 0 // points into the stream header
			return toc
		}, "offset"},
		{"overlapping-ranges", func(toc []UnitInfo) []UnitInfo {
			toc[2].Off = toc[1].Off + 1 // overlaps unit 1's payload
			return toc
		}, "offset"},
		{"gap-out-of-bounds", func(toc []UnitInfo) []UnitInfo {
			toc[2].Off += 1 << 20 // past every real unit
			return toc
		}, "offset"},
		{"non-monotonic", func(toc []UnitInfo) []UnitInfo {
			toc[1], toc[2] = toc[2], toc[1]
			return toc
		}, "offset"},
		{"length-desyncs-successor", func(toc []UnitInfo) []UnitInfo {
			// A plausible length lie: entry 1 claims one byte less, so
			// entry 2's (true) offset no longer lines up.
			toc[1].Len--
			return toc
		}, "offset"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			data, err := MarshalTOC(tc.mutate(clone()))
			if err != nil {
				t.Fatal(err)
			}
			_, err = ParseTOC(data)
			if err == nil {
				t.Fatal("malformed unit table accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}

	t.Run("bad-json", func(t *testing.T) {
		if _, err := ParseTOC([]byte("{not json")); err == nil {
			t.Fatal("accepted malformed JSON")
		}
	})
	t.Run("empty-table", func(t *testing.T) {
		// An empty table is geometrically valid (no units, no demand
		// path); it must not be an error.
		if _, err := ParseTOC([]byte("[]")); err != nil {
			t.Fatalf("empty table rejected: %v", err)
		}
	})
}
