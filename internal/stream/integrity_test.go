package stream

import (
	"bytes"
	"errors"
	"testing"

	"nonstrict/internal/vm"
)

// corruptUnit returns a copy of a well-formed stream with one payload
// byte of unit i flipped. The unit header stays intact, so the checksum
// — not the framing — must catch it.
func corruptUnit(t *testing.T, good []byte, i int) []byte {
	t.Helper()
	off, _, n := unitAt(t, good, i)
	mut := append([]byte(nil), good...)
	mut[off+headerSize+n/2] ^= 0x20
	return mut
}

// TestRepairHealsCorruptUnit flips a payload byte and checks the Repair
// hook is asked for exactly that unit, the repaired stream installs
// completely, and the counters record the round trip.
func TestRepairHealsCorruptUnit(t *testing.T) {
	app, rp, _, w := plan(t, "Hanoi")
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	toc := w.TOC()

	for i, name := range map[int]string{0: "global", 1: "body"} {
		t.Run(name, func(t *testing.T) {
			mut := corruptUnit(t, good, i)
			l := NewLoader(rp.Name, rp.MainClass, nil)
			var reqs []RepairRequest
			l.Repair = func(req RepairRequest) ([]byte, error) {
				reqs = append(reqs, req)
				// Serve the true payload out of the pristine copy, as a
				// byte-range re-fetch would.
				u := toc[i]
				return good[u.Off : u.Off+int64(u.Len)], nil
			}
			if err := l.Load(bytes.NewReader(mut), nil); err != nil {
				t.Fatal(err)
			}
			if len(reqs) != 1 {
				t.Fatalf("repair hook called %d times, want 1", len(reqs))
			}
			if reqs[0].Class != toc[i].Class || reqs[0].Kind != toc[i].Kind ||
				reqs[0].Body != toc[i].Body || reqs[0].Len != toc[i].Len || reqs[0].CRC != toc[i].CRC {
				t.Errorf("repair request %+v does not match unit table entry %+v", reqs[0], toc[i])
			}
			st := l.Integrity()
			if st.CorruptUnits != 1 || st.RepairAttempts != 1 || st.Repaired != 1 || st.Quarantined != 0 {
				t.Errorf("counters = %+v, want 1 corrupt / 1 attempt / 1 repaired / 0 quarantined", st)
			}
			if !st.DigestVerified {
				t.Error("whole-stream digest not verified after successful repair")
			}
			got, err := l.Program()
			if err != nil {
				t.Fatal(err)
			}
			ln, err := vm.Link(got)
			if err != nil {
				t.Fatal(err)
			}
			m, err := ln.Run(vm.Options{Args: app.TestArgs, MaxSteps: 1e8})
			if err != nil {
				t.Fatal(err)
			}
			if err := app.Check(m, false); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRepairRetriesAreBounded feeds the hook garbage: the loader must
// retry exactly RepairAttempts times, quarantine the unit, keep going,
// and report the incomplete program from Program().
func TestRepairRetriesAreBounded(t *testing.T) {
	_, rp, _, w := plan(t, "Hanoi")
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Corrupt a body unit (unit 1: the main class's first body).
	mut := corruptUnit(t, good, 1)
	l := NewLoader(rp.Name, rp.MainClass, nil)
	l.RepairAttempts = 2
	calls := 0
	l.Repair = func(req RepairRequest) ([]byte, error) {
		calls++
		if req.Attempt != calls {
			t.Errorf("attempt %d reported as %d", calls, req.Attempt)
		}
		return []byte("still garbage"), nil
	}
	if err := l.Load(bytes.NewReader(mut), nil); err != nil {
		t.Fatalf("quarantine should not fail the stream: %v", err)
	}
	if calls != 2 {
		t.Errorf("repair hook called %d times, want 2", calls)
	}
	st := l.Integrity()
	if st.Quarantined != 1 || st.Outstanding != 1 || st.Repaired != 0 {
		t.Errorf("counters = %+v, want 1 quarantined outstanding", st)
	}
	if st.DigestVerified {
		t.Error("digest claimed verified with a quarantined unit")
	}
	q := l.Quarantined()
	if len(q) != 1 || q[0].Kind != KindBody {
		t.Fatalf("quarantine list = %+v, want the one corrupt body", q)
	}
	if _, err := l.Program(); err == nil {
		t.Fatal("assembled a program with a quarantined body")
	} else if want := "quarantined"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Errorf("Program() error %q does not mention quarantine", err)
	}
}

// TestDemandHealsQuarantine quarantines a corrupt global (no repair
// hook would fire — Repair re-fetches garbage), then delivers clean
// copies through FeedDemand, as the live runtime's demand path would.
// The bodies that followed the corrupt global must have been quarantined
// with it, and the program must assemble completely afterwards.
func TestDemandHealsQuarantine(t *testing.T) {
	app, rp, _, w := plan(t, "Hanoi")
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	toc := w.TOC()

	mut := corruptUnit(t, good, 0) // the first global
	l := NewLoader(rp.Name, rp.MainClass, nil)
	l.Repair = func(RepairRequest) ([]byte, error) { return nil, errors.New("link down") }
	l.RepairAttempts = 1
	if err := l.Load(bytes.NewReader(mut), nil); err != nil {
		t.Fatal(err)
	}
	outstanding := l.Integrity().Outstanding
	if outstanding < 2 {
		t.Fatalf("%d units quarantined; the global's bodies should be quarantined with it", outstanding)
	}

	// Demand-deliver every quarantined unit from the pristine copy,
	// global first.
	for pass := 0; pass < 2; pass++ {
		for _, q := range l.Quarantined() {
			if (pass == 0) != (q.Kind == KindGlobal) {
				continue
			}
			u := toc[unitIndex(t, toc, q)]
			payload := good[u.Off : u.Off+int64(u.Len)]
			if _, err := l.FeedDemand(u.Class, u.Kind, u.Body, payload, u.CRC); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := l.Integrity().Outstanding; got != 0 {
		t.Fatalf("%d units still quarantined after demand heal", got)
	}
	got, err := l.Program()
	if err != nil {
		t.Fatal(err)
	}
	ln, err := vm.Link(got)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ln.Run(vm.Options{Args: app.TestArgs, MaxSteps: 1e8})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Check(m, false); err != nil {
		t.Fatal(err)
	}
}

// TestDemandDuringFailedRepairLeavesNoStaleQuarantine pins the
// demand-races-repair interleaving: while a corrupt unit's repair
// attempts are failing, the demand path delivers a clean copy of the
// same unit (the live runtime does exactly this when the gate's
// out-of-order fetch wins the race). The quarantine that follows must
// notice the unit is already installed and record nothing — a stale
// entry here is unhealable (FeedDemand skips present units) and would
// pin Integrity().Outstanding above zero forever; for a global unit it
// would also shadow-quarantine every later clean body of the class.
func TestDemandDuringFailedRepairLeavesNoStaleQuarantine(t *testing.T) {
	app, rp, _, w := plan(t, "Hanoi")
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	toc := w.TOC()

	for i, name := range map[int]string{0: "global", 1: "body"} {
		t.Run(name, func(t *testing.T) {
			mut := corruptUnit(t, good, i)
			l := NewLoader(rp.Name, rp.MainClass, nil)
			l.RepairAttempts = 1
			l.Repair = func(req RepairRequest) ([]byte, error) {
				// The demand fetch lands a clean copy mid-repair…
				u := toc[i]
				payload := good[u.Off : u.Off+int64(u.Len)]
				if _, err := l.FeedDemand(u.Class, u.Kind, u.Body, payload, u.CRC); err != nil {
					t.Errorf("demand during repair: %v", err)
				}
				// …and the repair itself still fails.
				return []byte("garbage"), nil
			}
			if err := l.Load(bytes.NewReader(mut), nil); err != nil {
				t.Fatal(err)
			}
			st := l.Integrity()
			if st.CorruptUnits != 1 || st.RepairAttempts != 1 {
				t.Errorf("counters = %+v, want 1 corrupt / 1 attempt", st)
			}
			if st.Quarantined != 0 || st.Outstanding != 0 {
				t.Errorf("stale quarantine left behind: %+v (list %+v)", st, l.Quarantined())
			}
			got, err := l.Program()
			if err != nil {
				t.Fatal(err)
			}
			ln, err := vm.Link(got)
			if err != nil {
				t.Fatal(err)
			}
			m, err := ln.Run(vm.Options{Args: app.TestArgs, MaxSteps: 1e8})
			if err != nil {
				t.Fatal(err)
			}
			if err := app.Check(m, false); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// unitIndex finds q's entry in the unit table.
func unitIndex(t *testing.T, toc []UnitInfo, q QuarantinedUnit) int {
	t.Helper()
	for i, u := range toc {
		if u.Class == q.Class && u.Kind == q.Kind && (q.Kind == KindGlobal || u.Body == q.Body) {
			return i
		}
	}
	t.Fatalf("quarantined unit %+v not in the unit table", q)
	return -1
}

// TestFeedDemandRejectsCorruptPayload: the demand path is just as
// exposed as the main stream; a payload that fails the unit table's
// checksum must never install.
func TestFeedDemandRejectsCorruptPayload(t *testing.T) {
	_, rp, _, w := plan(t, "Hanoi")
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	u := w.TOC()[0]
	payload := append([]byte(nil), good[u.Off:u.Off+int64(u.Len)]...)
	payload[0] ^= 0x01
	l := NewLoader(rp.Name, rp.MainClass, nil)
	_, err := l.FeedDemand(u.Class, u.Kind, u.Body, payload, u.CRC)
	if err == nil || !errors.Is(err, ErrStreamIntegrity) {
		t.Fatalf("err = %v, want ErrStreamIntegrity", err)
	}
	if l.LoadedClass(u.ClassName) != nil {
		t.Error("corrupt global installed anyway")
	}
}

// TestCleanStreamDigestVerified: the fault-free path must end with the
// whole-stream digest checked and no integrity counters ticked.
func TestCleanStreamDigestVerified(t *testing.T) {
	_, rp, _, w := plan(t, "Hanoi")
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	l := NewLoader(rp.Name, rp.MainClass, nil)
	if err := l.Load(&buf, nil); err != nil {
		t.Fatal(err)
	}
	st := l.Integrity()
	if !st.DigestVerified {
		t.Error("clean stream ended without digest verification")
	}
	if st.CorruptUnits != 0 || st.RepairAttempts != 0 || st.Quarantined != 0 {
		t.Errorf("clean stream ticked integrity counters: %+v", st)
	}
}
