package stream

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nonstrict/internal/obs"
	"nonstrict/internal/xrand"
)

// Default retry policy.
const (
	defaultRequestTimeout = 10 * time.Second
	defaultMaxRetries     = 8
	defaultBackoffBase    = 100 * time.Millisecond
	defaultBackoffMax     = 5 * time.Second
)

// FetchClient is a fault-tolerant HTTP streaming client for interleaved
// virtual files. Every request carries a per-request timeout that also
// acts as an idle watchdog on the streaming body; failures retry under
// capped exponential backoff with deterministic jitter; and a dropped
// connection resumes from the current byte offset with a Range request,
// so a transfer completes with correct bytes across arbitrarily many
// mid-stream disconnects. Demand fetches of specific byte ranges
// (misprediction corrections) go through FetchRange, which applies the
// same policy. The zero value is ready to use.
//
// A FetchClient is safe for concurrent use; its counters aggregate
// across all transfers.
type FetchClient struct {
	// HTTP issues the requests; nil uses a default client. Do not set a
	// global Timeout on it — it would cap whole streaming bodies; the
	// per-request watchdog handles hung transfers.
	HTTP *http.Client
	// RequestTimeout bounds each attempt: time to response headers, and
	// thereafter the maximum idle gap between body reads. 0 means 10s.
	RequestTimeout time.Duration
	// MaxRetries caps consecutive failed attempts (attempts that deliver
	// no new bytes) before the transfer fails. 0 means 8.
	MaxRetries int
	// BackoffBase and BackoffMax shape the capped exponential backoff
	// between retries. 0 means 100ms and 5s.
	BackoffBase, BackoffMax time.Duration
	// JitterSeed seeds the deterministic jitter source, so a seeded
	// client retries on a reproducible schedule. 0 uses a fixed seed.
	JitterSeed uint64
	// Obs, when non-nil, receives transfer events (retries with their
	// backoff, Range resumes with their offset). Set it before the first
	// request; it must not change while transfers are in flight.
	Obs *obs.Recorder

	// sleep waits between retries; tests override it to observe the
	// backoff schedule without real delays. nil sleeps on a timer,
	// honouring ctx.
	sleep func(ctx context.Context, d time.Duration) error

	rngMu sync.Mutex
	rng   *xrand.Rand

	requests atomic.Int64
	retries  atomic.Int64
	resumes  atomic.Int64
	bytes    atomic.Int64
}

// FetchStats is a snapshot of a client's transfer counters.
type FetchStats struct {
	// Requests is the number of HTTP requests issued.
	Requests int64
	// Retries counts failed attempts that were retried after backoff.
	Retries int64
	// Resumes counts reconnects that continued a partial transfer from
	// its current offset.
	Resumes int64
	// BytesTransferred is the payload bytes received across all
	// transfers (bytes re-fetched after a resume are not double-counted;
	// resumption continues from the exact drop offset).
	BytesTransferred int64
}

// Stats returns a snapshot of the client's counters.
func (c *FetchClient) Stats() FetchStats {
	return FetchStats{
		Requests:         c.requests.Load(),
		Retries:          c.retries.Load(),
		Resumes:          c.resumes.Load(),
		BytesTransferred: c.bytes.Load(),
	}
}

func (c *FetchClient) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *FetchClient) requestTimeout() time.Duration {
	if c.RequestTimeout > 0 {
		return c.RequestTimeout
	}
	return defaultRequestTimeout
}

func (c *FetchClient) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	return defaultMaxRetries
}

// backoff returns the jittered delay before retry number fails (1-based):
// capped exponential, uniformly jittered into [d/2, d).
func (c *FetchClient) backoff(fails int) time.Duration {
	base := c.BackoffBase
	if base <= 0 {
		base = defaultBackoffBase
	}
	max := c.BackoffMax
	if max <= 0 {
		max = defaultBackoffMax
	}
	d := base
	for i := 1; i < fails && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	c.rngMu.Lock()
	if c.rng == nil {
		seed := c.JitterSeed
		if seed == 0 {
			seed = 0xC0FFEE
		}
		c.rng = xrand.New(seed)
	}
	// Sub-2ns bases truncate d/2 to zero; skip the jitter rather than
	// dividing by it.
	jittered := d
	if half := d / 2; half > 0 {
		jittered = half + time.Duration(c.rng.Int63())%half
	}
	c.rngMu.Unlock()
	return jittered
}

func (c *FetchClient) sleepFn() func(context.Context, time.Duration) error {
	if c.sleep != nil {
		return c.sleep
	}
	return func(ctx context.Context, d time.Duration) error {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	}
}

// ErrFetchFailed wraps terminal client failures.
var ErrFetchFailed = errors.New("stream: fetch failed")

// ErrArtifactChanged reports that the server's artifact was replaced
// mid-transfer: the ETag pinned on the first response no longer matches,
// and bytes already delivered came from the old version. Splicing a
// resume from the new version onto them would hand the loader a
// frankenstream, so the transfer fails instead; FetchRangeVerified
// restarts the whole range against the new artifact, and whole-stream
// callers surface the error.
var ErrArtifactChanged = errors.New("stream: artifact changed mid-transfer")

// permanentError marks failures no retry can fix (4xx statuses).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// retryAfterError is a retryable failure carrying the server's
// Retry-After hint; the backoff honours the hint instead of its own
// schedule. A shedding server knows better than our exponential guess
// when capacity will return.
type retryAfterError struct {
	after time.Duration
	err   error
}

func (e *retryAfterError) Error() string { return e.err.Error() }
func (e *retryAfterError) Unwrap() error { return e.err }

// maxRetryAfter caps how long a server-supplied Retry-After can make the
// client sleep; a misconfigured (or hostile) hint must not park a
// transfer for minutes.
const maxRetryAfter = 30 * time.Second

// parseRetryAfter reads a Retry-After value in either of its RFC 9110
// forms — delta-seconds or an HTTP-date — as a delay relative to now.
// The result is clamped to maxRetryAfter; 0 means absent or unusable
// (including dates already in the past, which mean "retry now" and so
// fall back to the client's own backoff schedule).
func parseRetryAfter(h string, now time.Time) time.Duration {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs <= 0 {
			return 0
		}
		// Clamp before converting: a pathological delta-seconds can
		// overflow time.Duration's int64 nanoseconds.
		if secs > int(maxRetryAfter/time.Second) {
			return maxRetryAfter
		}
		return time.Duration(secs) * time.Second
	}
	when, err := http.ParseTime(h)
	if err != nil {
		return 0
	}
	d := when.Sub(now)
	if d <= 0 {
		return 0
	}
	return min(d, maxRetryAfter)
}

// Open starts streaming url and returns a reader over its bytes. The
// reader transparently reconnects and resumes from the current offset on
// timeouts and dropped connections; it fails only after MaxRetries
// consecutive attempts deliver nothing, or when ctx is done. The first
// connection is made eagerly so unreachable servers and permanent HTTP
// errors surface here.
func (c *FetchClient) Open(ctx context.Context, url string) (io.ReadCloser, error) {
	r := &resumeReader{c: c, ctx: ctx, url: url, end: -1, total: -1}
	if err := r.connect(); err != nil {
		return nil, err
	}
	return r, nil
}

// Fetch downloads url into w, resuming through failures, and returns the
// byte count delivered.
func (c *FetchClient) Fetch(ctx context.Context, url string, w io.Writer) (int64, error) {
	r, err := c.Open(ctx, url)
	if err != nil {
		return 0, err
	}
	defer r.Close()
	return io.Copy(w, r)
}

// FetchRange downloads length bytes starting at offset from into w — the
// demand-fetch path: when a misprediction needs bytes out of stream
// order, the correction retries and resumes under the same policy as the
// main transfer.
func (c *FetchClient) FetchRange(ctx context.Context, url string, from, length int64, w io.Writer) (int64, error) {
	if from < 0 || length <= 0 {
		return 0, fmt.Errorf("%w: bad range [%d, %d)", ErrFetchFailed, from, from+length)
	}
	r := &resumeReader{c: c, ctx: ctx, url: url, off: from, start: from, end: from + length, total: -1}
	if err := r.connect(); err != nil {
		return 0, err
	}
	defer r.Close()
	return io.Copy(w, r)
}

// FetchRangeVerified downloads the length bytes at offset from and
// verifies them against the unit table's checksum before returning them
// — the demand/repair fetch path. The distinction it enforces: a
// transfer interrupted mid-range resumes at the last RECEIVED byte like
// any other fetch, but received is not verified — a unit's bytes can
// only be checked once the whole range is in. When the assembled
// payload fails its checksum (a corrupt prefix spliced across a
// reconnect, a lying proxy), the unverified bytes are discarded and the
// fetch restarts from the last verified byte, which for a unit fetch is
// the range start. Restarts back off and share the client's retry
// budget, so a range that never verifies fails cleanly with
// ErrStreamIntegrity instead of installing garbage or burning the
// caller's attempts on poisoned splices.
// It returns the verified payload and the number of whole-range
// attempts made (1 when the first assembled payload verified).
func (c *FetchClient) FetchRangeVerified(ctx context.Context, url string, from, length int64, crc uint32) ([]byte, int, error) {
	var buf bytes.Buffer
	for fails := 0; ; {
		buf.Reset()
		_, err := c.FetchRange(ctx, url, from, length, &buf)
		switch {
		case err == nil:
			if p := buf.Bytes(); ChecksumPayload(p) == crc {
				return p, fails + 1, nil
			}
			c.Obs.Emit(obs.CRCFail, url, length, 0)
		case errors.Is(err, ErrArtifactChanged):
			// The artifact was replaced under the transfer. The partial
			// bytes are garbage by definition; restart the whole range,
			// pinning the new version, exactly as a checksum failure
			// restarts a poisoned splice.
		default:
			return nil, fails + 1, err
		}
		fails++
		if fails >= c.maxRetries() {
			return nil, fails, fmt.Errorf("%w: range [%d,%d) failed verification %d times",
				ErrStreamIntegrity, from, from+length, fails)
		}
		c.retries.Add(1)
		d := c.backoff(fails)
		if err := c.sleepFn()(ctx, d); err != nil {
			return nil, fails, err
		}
		c.Obs.Emit(obs.Retry, url, 0, d)
	}
}

// resumeReader streams one URL with reconnect-and-resume. Reads return
// whatever bytes each connection yields; when a connection dies the next
// Read reconnects with a Range request from the current offset.
type resumeReader struct {
	c   *FetchClient
	ctx context.Context
	url string

	start int64  // first byte of the transfer
	off   int64  // next byte offset to deliver
	end   int64  // exclusive end, -1 = to EOF
	total int64  // total stream size from the server, -1 = unknown
	etag  string // validator pinned from the first response; "" until seen

	body      io.ReadCloser
	cancelReq context.CancelFunc
	watchdog  *time.Timer
	fails     int // consecutive attempts with no progress
	lastErr   error
	finished  bool
	closed    bool
}

// connect establishes one connection at the current offset, retrying
// with backoff until it succeeds, fails permanently, or exhausts
// MaxRetries consecutive failures.
func (r *resumeReader) connect() error {
	for {
		if err := r.ctx.Err(); err != nil {
			return err
		}
		err := r.tryConnect()
		if err == nil {
			return nil
		}
		r.lastErr = err
		if errors.Is(err, ErrArtifactChanged) {
			// Bytes already delivered came from a dead artifact; no
			// reconnect can make the spliced stream coherent.
			return err
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return fmt.Errorf("%w: %v", ErrFetchFailed, err)
		}
		r.fails++
		if r.fails > r.c.maxRetries() {
			return fmt.Errorf("%w: %d consecutive attempts failed, last: %v", ErrFetchFailed, r.fails, err)
		}
		r.c.retries.Add(1)
		d := r.c.backoff(r.fails)
		var ra *retryAfterError
		if errors.As(err, &ra) && ra.after > 0 {
			// A shedding server said when to come back; believe it
			// (within reason) instead of the exponential guess.
			d = min(ra.after, maxRetryAfter)
		}
		if serr := r.c.sleepFn()(r.ctx, d); serr != nil {
			return serr
		}
		r.c.Obs.Emit(obs.Retry, r.url, 0, d)
	}
}

// tryConnect issues a single request for [r.off, r.end) and installs the
// body and its idle watchdog.
func (r *resumeReader) tryConnect() error {
	attemptCtx, cancel := context.WithCancel(r.ctx)
	req, err := http.NewRequestWithContext(attemptCtx, http.MethodGet, r.url, nil)
	if err != nil {
		cancel()
		return &permanentError{err}
	}
	ranged := r.off > 0 || r.end >= 0
	if ranged {
		if r.end >= 0 {
			req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", r.off, r.end-1))
		} else {
			req.Header.Set("Range", fmt.Sprintf("bytes=%d-", r.off))
		}
		if r.etag != "" {
			// If-Range makes the splice hazard the server's problem: a
			// matching artifact yields the 206 we asked for, a replaced
			// one yields a full 200 of the new bytes instead of silently
			// resuming into them at the wrong offset.
			req.Header.Set("If-Range", r.etag)
		}
	}
	watchdog := time.AfterFunc(r.c.requestTimeout(), cancel)
	r.c.requests.Add(1)
	resp, err := r.c.httpClient().Do(req)
	if err != nil {
		watchdog.Stop()
		cancel()
		return err
	}

	respETag := resp.Header.Get("ETag")
	discard := int64(0) // bytes to skip when the server ignored Range
	switch resp.StatusCode {
	case http.StatusOK:
		if r.etag != "" && respETag != "" && respETag != r.etag {
			// The artifact changed since we pinned. With nothing
			// delivered yet the new version is simply adopted (the
			// discard below skips to our offset within the NEW bytes,
			// which is a fresh coherent transfer). With old bytes
			// already handed out, appending new-version bytes would
			// splice two artifacts into one stream — fail instead.
			if r.off > r.start {
				resp.Body.Close()
				watchdog.Stop()
				cancel()
				return fmt.Errorf("%w: pinned %s, server now serves %s", ErrArtifactChanged, r.etag, respETag)
			}
			r.etag = respETag
		}
		if r.etag == "" {
			r.etag = respETag
		}
		if resp.ContentLength >= 0 {
			r.total = resp.ContentLength
		}
		discard = r.off
	case http.StatusPartialContent:
		if r.etag != "" && respETag != "" && respETag != r.etag {
			// A 206 against a different validator should be impossible
			// under If-Range; a server (or proxy) that does it anyway is
			// offering bytes from an artifact we never started.
			resp.Body.Close()
			watchdog.Stop()
			cancel()
			return fmt.Errorf("%w: 206 with ETag %s, pinned %s", ErrArtifactChanged, respETag, r.etag)
		}
		if r.etag == "" {
			r.etag = respETag
		}
		// A 206 whose Content-Range is missing or unparseable gives no
		// proof the body starts at our resume offset; accepting it could
		// splice bytes at the wrong position. Treat it as a retryable
		// failure, like a dropped connection.
		start, total, ok := parseContentRange(resp.Header.Get("Content-Range"))
		if !ok {
			resp.Body.Close()
			watchdog.Stop()
			cancel()
			return fmt.Errorf("stream: 206 with missing or bad Content-Range %q", resp.Header.Get("Content-Range"))
		}
		if start != r.off {
			resp.Body.Close()
			watchdog.Stop()
			cancel()
			return fmt.Errorf("stream: server resumed at %d, want %d", start, r.off)
		}
		if total >= 0 {
			r.total = total
		}
	default:
		resp.Body.Close()
		watchdog.Stop()
		cancel()
		err := fmt.Errorf("stream: server returned %s", resp.Status)
		if resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
			return &permanentError{err}
		}
		if after := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); after > 0 {
			return &retryAfterError{after: after, err: err}
		}
		return err
	}

	if discard > 0 {
		// The server ignored our Range request; skip to the offset,
		// resetting the watchdog as the skipped bytes stream in.
		if err := discardN(resp.Body, discard, watchdog, r.c.requestTimeout()); err != nil {
			resp.Body.Close()
			watchdog.Stop()
			cancel()
			return fmt.Errorf("stream: skipping to offset %d: %w", r.off, err)
		}
	}
	if r.off > r.start {
		r.c.resumes.Add(1)
		r.c.Obs.Emit(obs.Resume, r.url, r.off, 0)
	}
	r.body = resp.Body
	r.cancelReq = cancel
	r.watchdog = watchdog
	return nil
}

func discardN(body io.Reader, n int64, watchdog *time.Timer, timeout time.Duration) error {
	bp := copyBufPool.Get().(*[]byte)
	defer copyBufPool.Put(bp)
	buf := *bp
	for n > 0 {
		chunk := int64(len(buf))
		if chunk > n {
			chunk = n
		}
		k, err := io.ReadFull(body, buf[:chunk])
		if k > 0 {
			watchdog.Reset(timeout)
			n -= int64(k)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// teardown drops the current connection.
func (r *resumeReader) teardown() {
	if r.watchdog != nil {
		r.watchdog.Stop()
		r.watchdog = nil
	}
	if r.body != nil {
		r.body.Close()
		r.body = nil
	}
	if r.cancelReq != nil {
		r.cancelReq()
		r.cancelReq = nil
	}
}

// done reports whether every requested byte has been delivered.
func (r *resumeReader) done() bool {
	if r.end >= 0 {
		return r.off >= r.end
	}
	return r.total >= 0 && r.off >= r.total
}

func (r *resumeReader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, errors.New("stream: read from closed fetch reader")
	}
	for {
		if r.finished || r.done() {
			r.finished = true
			r.teardown()
			return 0, io.EOF
		}
		if r.body == nil {
			if err := r.connect(); err != nil {
				return 0, err
			}
		}
		pp := p
		if r.end >= 0 && int64(len(pp)) > r.end-r.off {
			pp = pp[:r.end-r.off]
		}
		n, err := r.body.Read(pp)
		if n > 0 {
			r.off += int64(n)
			r.c.bytes.Add(int64(n))
			r.fails = 0
			r.watchdog.Reset(r.c.requestTimeout())
		}
		switch {
		case err == nil:
			return n, nil
		case err == io.EOF && (r.done() || (r.end < 0 && r.total < 0)):
			// Complete — or no length information to contradict EOF.
			r.finished = true
			r.teardown()
			return n, io.EOF
		default:
			// Dropped mid-stream (or EOF short of the promised length):
			// tear down and resume. Progress is handed back first; the
			// retry budget only burns on attempts that delivered nothing.
			r.lastErr = err
			r.teardown()
			if n > 0 {
				return n, nil
			}
			r.fails++
			if r.fails > r.c.maxRetries() {
				return 0, fmt.Errorf("%w: %d consecutive attempts failed, last: %v", ErrFetchFailed, r.fails, err)
			}
			r.c.retries.Add(1)
			d := r.c.backoff(r.fails)
			if serr := r.c.sleepFn()(r.ctx, d); serr != nil {
				return 0, serr
			}
			r.c.Obs.Emit(obs.Retry, r.url, 0, d)
		}
	}
}

func (r *resumeReader) Close() error {
	r.closed = true
	r.teardown()
	return nil
}

// parseContentRange extracts the start offset and total size from a
// "bytes start-end/total" header; total is -1 for "*".
func parseContentRange(h string) (start, total int64, ok bool) {
	h = strings.TrimPrefix(h, "bytes ")
	slash := strings.IndexByte(h, '/')
	dash := strings.IndexByte(h, '-')
	if slash < 0 || dash < 0 || dash > slash {
		return 0, 0, false
	}
	start, err := strconv.ParseInt(h[:dash], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	total = -1
	if t := h[slash+1:]; t != "*" {
		total, err = strconv.ParseInt(t, 10, 64)
		if err != nil {
			return 0, 0, false
		}
	}
	return start, total, true
}
