package stream

import (
	"io"
	"net"
	"testing"
)

func TestLinkByNameAndParse(t *testing.T) {
	for _, name := range LinkNames() {
		l, err := LinkByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if l.Name != name || l.Bandwidth <= 0 || l.RTT <= 0 {
			t.Fatalf("degenerate built-in link %+v", l)
		}
	}
	if _, err := LinkByName("carrier-pigeon"); err == nil {
		t.Fatal("unknown link resolved")
	}
	all, err := ParseLinks("")
	if err != nil || len(all) != len(LinkNames()) {
		t.Fatalf("ParseLinks(\"\") = %d links, err %v", len(all), err)
	}
	two, err := ParseLinks(" modem , t1 ")
	if err != nil || len(two) != 2 || two[0].Name != "modem" || two[1].Name != "t1" {
		t.Fatalf("ParseLinks = %+v, err %v", two, err)
	}
	if _, err := ParseLinks("modem,nope"); err == nil {
		t.Fatal("bad list parsed")
	}
}

// shapedRead pumps total bytes through a shaped pipe and returns how
// many arrived before the first error (if any).
func shapedRead(t *testing.T, link LinkClass, seed uint64, total int) (int, error) {
	t.Helper()
	cl, srv := net.Pipe()
	go func() {
		buf := make([]byte, 4096)
		left := total
		for left > 0 {
			n := len(buf)
			if n > left {
				n = left
			}
			if _, err := srv.Write(buf[:n]); err != nil {
				return
			}
			left -= n
		}
		srv.Close()
	}()
	// Enormous scale: schedule decisions intact, sleeps negligible.
	shaped := link.Shape(cl, seed, 1e9)
	defer shaped.Close()
	got := 0
	buf := make([]byte, 4096)
	for {
		n, err := shaped.Read(buf)
		got += n
		if err == io.EOF {
			return got, nil
		}
		if err != nil {
			return got, err
		}
	}
}

// TestShapeLossDeterministic: the injected reset position is a pure
// function of (link, seed) — the per-connection schedule contract the
// fleet's determinism rests on.
func TestShapeLossDeterministic(t *testing.T) {
	lossy := LinkClass{Name: "lossy", RTT: 1, Bandwidth: 1 << 30, LossEvery: 4 << 10}
	n1, err1 := shapedRead(t, lossy, 5, 64<<10)
	if err1 == nil {
		t.Fatalf("no loss injected across %d bytes (mean %d)", 64<<10, lossy.LossEvery)
	}
	n2, err2 := shapedRead(t, lossy, 5, 64<<10)
	if err2 == nil || n1 != n2 {
		t.Fatalf("same seed: loss at %d then %d bytes", n1, n2)
	}
	if n1 < lossy.LossEvery/2 || n1 >= 2*lossy.LossEvery {
		t.Fatalf("loss at %d bytes, outside the drawn range for mean %d", n1, lossy.LossEvery)
	}
	n3, _ := shapedRead(t, lossy, 6, 64<<10)
	if n3 == n1 {
		t.Fatalf("different seeds injected loss at the same byte %d", n1)
	}
}

// TestShapeLossless: a lossless link delivers everything intact.
func TestShapeLossless(t *testing.T) {
	got, err := shapedRead(t, LinkT1, 9, 32<<10)
	if err != nil || got != 32<<10 {
		t.Fatalf("lossless link delivered %d of %d bytes, err %v", got, 32<<10, err)
	}
}
