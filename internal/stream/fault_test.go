package stream

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestFaultLatencyHonorsCancel is the regression test for latency
// sleeps ignoring request cancellation: a disconnected client must not
// pin the handler goroutine for the remaining sleep. Before the fix the
// handler slept the full Latency per write regardless of the dead
// request, so this test timed out.
func TestFaultLatencyHonorsCancel(t *testing.T) {
	f := Fault{Latency: 30 * time.Second}
	h := f.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("one"))
		w.Write([]byte("two"))
	}))
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone when the handler starts
	req := httptest.NewRequest(http.MethodGet, "/app", nil).WithContext(ctx)

	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(httptest.NewRecorder(), req)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler still sleeping 5s after the request was canceled")
	}
}

// TestFaultStallHonorsCancel: an unbounded stall (StallFor 0) must end
// the moment the client disconnects, not hold the goroutine forever.
func TestFaultStallHonorsCancel(t *testing.T) {
	f := Fault{StallAfter: 2}
	h := f.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(make([]byte, 64))
	}))
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/app", nil).WithContext(ctx)

	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(httptest.NewRecorder(), req)
	}()
	time.AfterFunc(50*time.Millisecond, cancel)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stalled handler survived client disconnect")
	}
}

// TestFaultCorruptionDeterministic: the same seed must corrupt the same
// byte positions with the same masks on every request, and a different
// seed must corrupt differently — that is what makes a chaos schedule
// reproducible.
func TestFaultCorruptionDeterministic(t *testing.T) {
	data := testPayload(4 << 10)
	srv := serveBytes(t, data, Fault{CorruptEvery: 256, Seed: 7})

	get := func(srv *httptest.Server) []byte {
		t.Helper()
		resp, err := http.Get(srv.URL + "/app")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		got, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	first, second := get(srv), get(srv)
	if !bytes.Equal(first, second) {
		t.Fatal("identical requests corrupted differently under one seed")
	}
	if bytes.Equal(first, data) {
		t.Fatal("corruption fault delivered pristine bytes")
	}
	var diffs []int
	for i := range data {
		if first[i] != data[i] {
			diffs = append(diffs, i)
		}
	}
	if want := len(data) / 256; len(diffs) != want {
		t.Errorf("%d bytes corrupted, want %d (every 256th)", len(diffs), want)
	}
	for _, i := range diffs {
		if (i+1)%256 != 0 {
			t.Errorf("byte %d corrupted; positions should be multiples of 256", i)
		}
	}

	other := serveBytes(t, data, Fault{CorruptEvery: 256, Seed: 8})
	if bytes.Equal(get(other), first) {
		t.Error("different seeds produced identical corruption")
	}
}

// TestFaultTruncate: the response must end cleanly after exactly N body
// bytes — no reset, just a short body.
func TestFaultTruncate(t *testing.T) {
	data := testPayload(2 << 10)
	srv := serveBytes(t, data, Fault{TruncateAfter: 777})
	resp, err := http.Get(srv.URL + "/app")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, _ := io.ReadAll(resp.Body) // short read is the point; error depends on framing
	if len(got) != 777 {
		t.Fatalf("read %d bytes, want exactly 777", len(got))
	}
	if !bytes.Equal(got, data[:777]) {
		t.Error("truncated prefix does not match the original")
	}
}

// TestFaultGarbageRange: every Nth Range request gets a 206 whose
// Content-Range contradicts the request; the fetch client must reject
// the reply rather than splice junk at the wrong offset, and succeed
// on a retry.
func TestFaultGarbageRange(t *testing.T) {
	data := testPayload(4 << 10)
	srv := serveBytes(t, data, Fault{GarbageRangeEvery: 2, Seed: 3})
	c := fastClient(1, nil)

	// Every 2nd Range request is garbage, so the second fetch hits it
	// and must retry through to a clean reply.
	for i := 0; i < 2; i++ {
		var buf bytes.Buffer
		if _, err := c.FetchRange(context.Background(), srv.URL+"/app", 100, 500, &buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), data[100:600]) {
			t.Fatalf("fetch %d spliced wrong bytes under garbage replies", i)
		}
	}
	if c.Stats().Retries == 0 {
		t.Error("no retries recorded; the garbage reply was never served")
	}
}

// TestFaultGarbageRangeOnly: when every Range reply is garbage, the
// client must fail cleanly with ErrFetchFailed, never install junk.
func TestFaultGarbageRangeOnly(t *testing.T) {
	data := testPayload(4 << 10)
	srv := serveBytes(t, data, Fault{GarbageRangeEvery: 1, Seed: 3})
	c := fastClient(1, nil)
	var buf bytes.Buffer
	_, err := c.FetchRange(context.Background(), srv.URL+"/app", 100, 500, &buf)
	if err == nil || !errors.Is(err, ErrFetchFailed) {
		t.Fatalf("err = %v, want ErrFetchFailed", err)
	}
}

// TestFaultFlakyTOC: the first N unit-table requests fail with a 503;
// the retrying client must ride it out and other paths must be
// untouched.
func TestFaultFlakyTOC(t *testing.T) {
	toc := []byte(`[]`)
	mux := http.NewServeMux()
	mux.HandleFunc("/app.toc", func(w http.ResponseWriter, r *http.Request) {
		http.ServeContent(w, r, "app.toc.json", time.Time{}, bytes.NewReader(toc))
	})
	srv := httptest.NewServer(Fault{FlakyTOC: 2}.Wrap(mux))
	defer srv.Close()

	c := fastClient(1, nil)
	var buf bytes.Buffer
	if _, err := c.Fetch(context.Background(), srv.URL+"/app.toc", &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), toc) {
		t.Fatalf("fetched %q, want %q", buf.Bytes(), toc)
	}
	if got := c.Stats().Retries; got < 2 {
		t.Errorf("%d retries recorded, want at least the 2 flaky 503s", got)
	}
}

// TestFaultStallBounded: a bounded stall delays the body but the full
// payload still arrives on one connection.
func TestFaultStallBounded(t *testing.T) {
	data := testPayload(1 << 10)
	srv := serveBytes(t, data, Fault{StallAfter: 100, StallFor: 50 * time.Millisecond})
	began := time.Now()
	resp, err := http.Get(srv.URL + "/app")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("stalled response corrupted the payload")
	}
	if elapsed := time.Since(began); elapsed < 50*time.Millisecond {
		t.Errorf("response took %v; the 50ms stall never engaged", elapsed)
	}
}

// tocServer serves a real benchmark's stream and unit table through a
// fault — the chaos harness's server shape, for the TOC-exemption
// regression tests.
func tocServer(t *testing.T, f Fault) (*httptest.Server, []byte, []byte) {
	t.Helper()
	_, _, _, w := plan(t, "Hanoi")
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	toc, err := MarshalTOC(w.TOC())
	if err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	mux := http.NewServeMux()
	mux.HandleFunc("/app", func(w http.ResponseWriter, r *http.Request) {
		http.ServeContent(w, r, "app.bin", time.Time{}, bytes.NewReader(data))
	})
	mux.HandleFunc("/app.toc", func(w http.ResponseWriter, r *http.Request) {
		http.ServeContent(w, r, "app.toc.json", time.Time{}, bytes.NewReader(toc))
	})
	srv := httptest.NewServer(f.Wrap(mux))
	t.Cleanup(srv.Close)
	return srv, data, toc
}

// TestFaultGarbageRangeSparesTOC is the regression test for the fault
// layer garbaging unit-table resumes: a drop schedule small enough to
// interrupt the TOC transfer forces the client to resume it with a
// Range request, and with GarbageRangeEvery=1 every such resume came
// back as a bogus 206 — the TOC could never be fetched and every chaos
// schedule degraded identically at startup. The unit table must be
// exempt: the fetch succeeds and the table parses.
func TestFaultGarbageRangeSparesTOC(t *testing.T) {
	srv, _, toc := tocServer(t, Fault{DropEvery: 128, GarbageRangeEvery: 1, Seed: 42})
	if len(toc) <= 128 {
		t.Fatalf("unit table only %d bytes; the drop schedule cannot force a resume", len(toc))
	}
	c := fastClient(1, nil)
	var got bytes.Buffer
	if _, err := c.Fetch(context.Background(), srv.URL+"/app.toc", &got); err != nil {
		t.Fatalf("unit-table fetch under garbage-range chaos: %v", err)
	}
	if !bytes.Equal(got.Bytes(), toc) {
		t.Fatal("unit table arrived corrupted")
	}
	if _, err := ParseTOC(got.Bytes()); err != nil {
		t.Fatalf("fetched unit table does not parse: %v", err)
	}
	if c.Stats().Resumes == 0 {
		t.Error("TOC fetch never resumed; the regression scenario did not engage")
	}
}

// TestFaultGarbageRangeCounterSkipsTOC: unit-table requests must not
// advance the garbage-Range schedule either, so the same /app ranges
// are garbaged whether or not a .toc resume happened in between.
func TestFaultGarbageRangeCounterSkipsTOC(t *testing.T) {
	srv, data, toc := tocServer(t, Fault{GarbageRangeEvery: 2, Seed: 7})
	ranged := func(path string, from, to int) (int, []byte) {
		req, err := http.NewRequest("GET", srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", from, to))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b
	}

	// /app range #1: schedule count 1 — clean.
	if code, b := ranged("/app", 0, 15); code != http.StatusPartialContent || !bytes.Equal(b, data[:16]) {
		t.Fatalf("first /app range: code %d, %d bytes", code, len(b))
	}
	// A .toc range between them: exempt AND uncounted.
	if code, b := ranged("/app.toc", 0, 15); code != http.StatusPartialContent || !bytes.Equal(b, toc[:16]) {
		t.Fatalf("ranged unit-table request corrupted: code %d, body %q", code, b)
	}
	// /app range #2: schedule count 2 — garbaged. If the .toc request
	// had advanced the counter this would be count 3 and come back
	// clean.
	if _, b := ranged("/app", 0, 15); bytes.Equal(b, data[:16]) {
		t.Fatal("second /app range came back clean; the .toc request advanced the garbage schedule")
	}
}

// TestFaultCounters: each injected fault kind is counted for /metrics.
func TestFaultCounters(t *testing.T) {
	var fs FaultStats
	srv, _, _ := tocServer(t, Fault{
		DropEvery:         256,
		CorruptEvery:      200,
		GarbageRangeEvery: 1,
		FlakyTOC:          1,
		Seed:              9,
		Counters:          &fs,
	})
	c := fastClient(1, nil)
	var buf bytes.Buffer
	c.Fetch(context.Background(), srv.URL+"/app.toc", &buf) // rides out the 503 and the drops
	buf.Reset()
	c.FetchRange(context.Background(), srv.URL+"/app", 0, 64, &buf) // garbage every time: fails
	buf.Reset()
	c.Fetch(context.Background(), srv.URL+"/app", &buf) // dropped + corrupted stream

	got := fs.Snapshot()
	if got.Drops == 0 || got.CorruptedBytes == 0 || got.GarbageRanges == 0 || got.TOCFailures == 0 {
		t.Errorf("fault counters missing injections: %+v", got)
	}
	var nilStats *FaultStats
	if nilStats.Snapshot() != (FaultCounts{}) {
		t.Error("nil FaultStats snapshot not zero")
	}
}

// TestFaultScheduleIsolatedAcrossClients is the fleet-scale audit of the
// fault layer's per-connection state: every byte-positional schedule
// (corruption positions, masks, truncation point) lives in a faultWriter
// allocated per request, so thousands of concurrent clients must each
// observe exactly the schedule a lone serial client observes — no shared
// cursor, no cross-request drift. Run under -race in the chaos gate.
func TestFaultScheduleIsolatedAcrossClients(t *testing.T) {
	data := testPayload(8 << 10)
	f := Fault{CorruptEvery: 192, TruncateAfter: 6 << 10, Seed: 11}
	srv := serveBytes(t, data, f)

	fetch := func() ([]byte, error) {
		resp, err := http.Get(srv.URL + "/app")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		return io.ReadAll(resp.Body)
	}

	// Serial baseline first: the schedule one unhurried client sees.
	want, err := fetch()
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatal(err)
	}
	if int64(len(want)) != f.TruncateAfter {
		t.Fatalf("baseline delivered %d bytes, want truncation at %d", len(want), f.TruncateAfter)
	}
	if bytes.Equal(want, data[:len(want)]) {
		t.Fatal("baseline saw pristine bytes; corruption schedule inactive")
	}

	const clients = 64
	got := make([][]byte, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = fetch()
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil && !errors.Is(errs[i], io.ErrUnexpectedEOF) {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if !bytes.Equal(got[i], want) {
			t.Fatalf("client %d observed a different fault schedule than the serial baseline (%d vs %d bytes)",
				i, len(got[i]), len(want))
		}
	}
}
