package stream

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestFaultLatencyHonorsCancel is the regression test for latency
// sleeps ignoring request cancellation: a disconnected client must not
// pin the handler goroutine for the remaining sleep. Before the fix the
// handler slept the full Latency per write regardless of the dead
// request, so this test timed out.
func TestFaultLatencyHonorsCancel(t *testing.T) {
	f := Fault{Latency: 30 * time.Second}
	h := f.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("one"))
		w.Write([]byte("two"))
	}))
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone when the handler starts
	req := httptest.NewRequest(http.MethodGet, "/app", nil).WithContext(ctx)

	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(httptest.NewRecorder(), req)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler still sleeping 5s after the request was canceled")
	}
}

// TestFaultStallHonorsCancel: an unbounded stall (StallFor 0) must end
// the moment the client disconnects, not hold the goroutine forever.
func TestFaultStallHonorsCancel(t *testing.T) {
	f := Fault{StallAfter: 2}
	h := f.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(make([]byte, 64))
	}))
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/app", nil).WithContext(ctx)

	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(httptest.NewRecorder(), req)
	}()
	time.AfterFunc(50*time.Millisecond, cancel)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stalled handler survived client disconnect")
	}
}

// TestFaultCorruptionDeterministic: the same seed must corrupt the same
// byte positions with the same masks on every request, and a different
// seed must corrupt differently — that is what makes a chaos schedule
// reproducible.
func TestFaultCorruptionDeterministic(t *testing.T) {
	data := testPayload(4 << 10)
	srv := serveBytes(t, data, Fault{CorruptEvery: 256, Seed: 7})

	get := func(srv *httptest.Server) []byte {
		t.Helper()
		resp, err := http.Get(srv.URL + "/app")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		got, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	first, second := get(srv), get(srv)
	if !bytes.Equal(first, second) {
		t.Fatal("identical requests corrupted differently under one seed")
	}
	if bytes.Equal(first, data) {
		t.Fatal("corruption fault delivered pristine bytes")
	}
	var diffs []int
	for i := range data {
		if first[i] != data[i] {
			diffs = append(diffs, i)
		}
	}
	if want := len(data) / 256; len(diffs) != want {
		t.Errorf("%d bytes corrupted, want %d (every 256th)", len(diffs), want)
	}
	for _, i := range diffs {
		if (i+1)%256 != 0 {
			t.Errorf("byte %d corrupted; positions should be multiples of 256", i)
		}
	}

	other := serveBytes(t, data, Fault{CorruptEvery: 256, Seed: 8})
	if bytes.Equal(get(other), first) {
		t.Error("different seeds produced identical corruption")
	}
}

// TestFaultTruncate: the response must end cleanly after exactly N body
// bytes — no reset, just a short body.
func TestFaultTruncate(t *testing.T) {
	data := testPayload(2 << 10)
	srv := serveBytes(t, data, Fault{TruncateAfter: 777})
	resp, err := http.Get(srv.URL + "/app")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, _ := io.ReadAll(resp.Body) // short read is the point; error depends on framing
	if len(got) != 777 {
		t.Fatalf("read %d bytes, want exactly 777", len(got))
	}
	if !bytes.Equal(got, data[:777]) {
		t.Error("truncated prefix does not match the original")
	}
}

// TestFaultGarbageRange: every Nth Range request gets a 206 whose
// Content-Range contradicts the request; the fetch client must reject
// the reply rather than splice junk at the wrong offset, and succeed
// on a retry.
func TestFaultGarbageRange(t *testing.T) {
	data := testPayload(4 << 10)
	srv := serveBytes(t, data, Fault{GarbageRangeEvery: 2, Seed: 3})
	c := fastClient(1, nil)

	// Every 2nd Range request is garbage, so the second fetch hits it
	// and must retry through to a clean reply.
	for i := 0; i < 2; i++ {
		var buf bytes.Buffer
		if _, err := c.FetchRange(context.Background(), srv.URL+"/app", 100, 500, &buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), data[100:600]) {
			t.Fatalf("fetch %d spliced wrong bytes under garbage replies", i)
		}
	}
	if c.Stats().Retries == 0 {
		t.Error("no retries recorded; the garbage reply was never served")
	}
}

// TestFaultGarbageRangeOnly: when every Range reply is garbage, the
// client must fail cleanly with ErrFetchFailed, never install junk.
func TestFaultGarbageRangeOnly(t *testing.T) {
	data := testPayload(4 << 10)
	srv := serveBytes(t, data, Fault{GarbageRangeEvery: 1, Seed: 3})
	c := fastClient(1, nil)
	var buf bytes.Buffer
	_, err := c.FetchRange(context.Background(), srv.URL+"/app", 100, 500, &buf)
	if err == nil || !errors.Is(err, ErrFetchFailed) {
		t.Fatalf("err = %v, want ErrFetchFailed", err)
	}
}

// TestFaultFlakyTOC: the first N unit-table requests fail with a 503;
// the retrying client must ride it out and other paths must be
// untouched.
func TestFaultFlakyTOC(t *testing.T) {
	toc := []byte(`[]`)
	mux := http.NewServeMux()
	mux.HandleFunc("/app.toc", func(w http.ResponseWriter, r *http.Request) {
		http.ServeContent(w, r, "app.toc.json", time.Time{}, bytes.NewReader(toc))
	})
	srv := httptest.NewServer(Fault{FlakyTOC: 2}.Wrap(mux))
	defer srv.Close()

	c := fastClient(1, nil)
	var buf bytes.Buffer
	if _, err := c.Fetch(context.Background(), srv.URL+"/app.toc", &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), toc) {
		t.Fatalf("fetched %q, want %q", buf.Bytes(), toc)
	}
	if got := c.Stats().Retries; got < 2 {
		t.Errorf("%d retries recorded, want at least the 2 flaky 503s", got)
	}
}

// TestFaultStallBounded: a bounded stall delays the body but the full
// payload still arrives on one connection.
func TestFaultStallBounded(t *testing.T) {
	data := testPayload(1 << 10)
	srv := serveBytes(t, data, Fault{StallAfter: 100, StallFor: 50 * time.Millisecond})
	began := time.Now()
	resp, err := http.Get(srv.URL + "/app")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("stalled response corrupted the payload")
	}
	if elapsed := time.Since(began); elapsed < 50*time.Millisecond {
		t.Errorf("response took %v; the 50ms stall never engaged", elapsed)
	}
}
