package stream

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// The loader and the unit-table parser sit directly on untrusted input:
// whatever the network delivers goes through them before anything else.
// These fuzz targets pin the contract that malformed input is an error,
// never a panic. CI runs the seed corpus on every `go test`; local
// exploration with `go test -fuzz=FuzzLoaderLoad ./internal/stream`
// digs deeper.

// fuzzSeedStream builds one valid Hanoi stream to derive seeds from.
func fuzzSeedStream(f *testing.F) (name, mainClass string, good []byte) {
	f.Helper()
	_, rp, _, w := plan(f, "Hanoi")
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	return rp.Name, rp.MainClass, buf.Bytes()
}

func FuzzLoaderLoad(f *testing.F) {
	name, mainClass, good := fuzzSeedStream(f)

	f.Add(good)
	f.Add(good[:len(good)/2])        // truncated mid-unit
	f.Add(good[:streamHeaderSize])   // header only
	f.Add(good[:streamHeaderSize-3]) // short header
	f.Add([]byte{})                  // empty
	f.Add([]byte("NSV2 not a stream at all, just prose with the right magic"))
	// Flip bits at troublesome places: magic, version, count, digest,
	// first unit header, first payload byte.
	for _, pos := range []int{0, 4, 7, 11, streamHeaderSize + 2, streamHeaderSize + 5, streamHeaderSize + headerSize} {
		mut := append([]byte(nil), good...)
		mut[pos] ^= 0x80
		f.Add(mut)
	}
	// A huge claimed unit length with a resealed unit-header check: the
	// framing looks valid, so the size bound has to reject it.
	{
		mut := append([]byte(nil), good...)
		off := streamHeaderSize
		class, kind, _, crc, err := parseUnitHeader(mut[off : off+headerSize])
		if err != nil {
			f.Fatal(err)
		}
		putUnitHeader(mut[off:off+headerSize], class, kind, maxUnitSize+1, crc)
		f.Add(mut)
	}
	// A claimed unit count of 2^32-1 over a tiny stream.
	{
		mut := append([]byte(nil), good[:streamHeaderSize+8]...)
		binary.BigEndian.PutUint32(mut[6:], ^uint32(0))
		resealStreamHeader(mut)
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		l := NewLoader(name, mainClass, nil)
		// Must never panic; errors are the expected outcome for almost
		// every input. A repair hook that always fails exercises the
		// quarantine paths under fuzzed framing too.
		l.Repair = func(RepairRequest) ([]byte, error) { return nil, ErrBadStream }
		l.RepairAttempts = 1
		if err := l.Load(bytes.NewReader(data), nil); err != nil {
			return
		}
		// The rare accepted input must be internally consistent.
		if _, err := l.Program(); err == nil {
			if !bytes.Equal(data, nil) && l.UnitsConsumed() == 0 {
				t.Error("assembled a program from zero units")
			}
		}
	})
}

func FuzzParseTOC(f *testing.F) {
	_, _, _, w := plan(f, "Hanoi")
	good, err := MarshalTOC(w.TOC())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte("[]"))
	f.Add([]byte("null"))
	f.Add([]byte(`[{"class":0,"kind":0,"body":-1,"off":31,"len":1}]`))
	f.Add([]byte(`[{"class":-1,"kind":9,"body":5,"off":-7,"len":-1}]`))
	f.Add(good[:len(good)/3]) // torn JSON
	f.Add(bytes.Replace(good, []byte(`"off"`), []byte(`"OFF"`), 1))

	f.Fuzz(func(t *testing.T, data []byte) {
		toc, err := ParseTOC(data)
		if err != nil {
			return
		}
		// Anything accepted must uphold the geometry the demand path
		// relies on: in-bounds kinds and strictly increasing,
		// non-overlapping payload ranges.
		prevEnd := int64(streamHeaderSize)
		for i, u := range toc {
			if u.Kind != KindGlobal && u.Kind != KindBody {
				t.Fatalf("entry %d: kind %d accepted", i, u.Kind)
			}
			if u.Len <= 0 || u.Len > maxUnitSize {
				t.Fatalf("entry %d: length %d accepted", i, u.Len)
			}
			if u.Off != prevEnd+headerSize {
				t.Fatalf("entry %d: offset %d accepted after end %d", i, u.Off, prevEnd)
			}
			prevEnd = u.Off + int64(u.Len)
		}
	})
}
