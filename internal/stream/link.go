package stream

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"time"

	"nonstrict/internal/xrand"
)

// LinkClass is a parameterized latency/bandwidth/loss schedule — the
// link-trace side of the chaos layer. Fault injects byte-positional
// damage on the server side of a connection; LinkClass shapes the
// client side of one: first-byte latency with seeded jitter, bandwidth
// pacing at MTU-sized reads, and seeded connection-killing loss events,
// the conditions the paper's transfer model sweeps (§2: a 128 Kb/s
// modem-class link against LAN-class links). Every draw comes from a
// per-connection xrand stream, so a (link, seed, conn) triple always
// produces the same schedule no matter how many thousands of
// connections run concurrently.
type LinkClass struct {
	// Name identifies the class in reports and on the command line.
	Name string
	// RTT is the first-byte delay per connection (round-trip setup).
	RTT time.Duration
	// Jitter bounds the seeded ± perturbation applied to RTT.
	Jitter time.Duration
	// Bandwidth is the downstream rate in bytes/second (0 = unpaced).
	Bandwidth int
	// LossEvery is the mean byte distance between injected connection
	// resets (0 = lossless). Actual distances are drawn uniformly from
	// [LossEvery/2, 3·LossEvery/2) per connection.
	LossEvery int
}

// The built-in link classes. Modem matches the paper's 14.4–128 Kb/s
// regime, T1 its fast-link contrast; LTE and Satellite extend the sweep
// to bursty-loss and high-latency regimes the paper's model predicts
// but could not measure.
var (
	LinkModem = LinkClass{Name: "modem", RTT: 120 * time.Millisecond,
		Jitter: 20 * time.Millisecond, Bandwidth: 7_000}
	LinkT1 = LinkClass{Name: "t1", RTT: 30 * time.Millisecond,
		Jitter: 5 * time.Millisecond, Bandwidth: 193_000}
	LinkLTE = LinkClass{Name: "lte", RTT: 50 * time.Millisecond,
		Jitter: 30 * time.Millisecond, Bandwidth: 1_500_000, LossEvery: 256 << 10}
	LinkSatellite = LinkClass{Name: "satellite", RTT: 600 * time.Millisecond,
		Jitter: 40 * time.Millisecond, Bandwidth: 250_000}
)

var builtinLinks = []LinkClass{LinkModem, LinkT1, LinkLTE, LinkSatellite}

// LinkNames lists the built-in link class names, sorted.
func LinkNames() []string {
	out := make([]string, len(builtinLinks))
	for i, l := range builtinLinks {
		out[i] = l.Name
	}
	sort.Strings(out)
	return out
}

// LinkByName resolves a built-in link class.
func LinkByName(name string) (LinkClass, error) {
	for _, l := range builtinLinks {
		if l.Name == name {
			return l, nil
		}
	}
	return LinkClass{}, fmt.Errorf("stream: unknown link class %q (have %s)",
		name, strings.Join(LinkNames(), ", "))
}

// ParseLinks resolves a comma-separated link class list ("modem,t1,lte");
// empty selects every built-in class.
func ParseLinks(s string) ([]LinkClass, error) {
	if strings.TrimSpace(s) == "" {
		return append([]LinkClass(nil), builtinLinks...), nil
	}
	var out []LinkClass
	for _, name := range strings.Split(s, ",") {
		l, err := LinkByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, l)
	}
	return out, nil
}

// Shape wraps conn's read side with this link's schedule. seed selects
// the connection's private jitter/loss stream; scale divides every
// sleep, so a simulation can run the modem's schedule at 1000× wall
// speed without changing any schedule decision (the byte positions of
// loss events and the shape of the pacing are scale-independent).
// scale <= 0 means real time.
func (lc LinkClass) Shape(conn net.Conn, seed uint64, scale float64) net.Conn {
	if scale <= 0 {
		scale = 1
	}
	r := xrand.New(seed)
	delay := lc.RTT
	if lc.Jitter > 0 {
		delay += time.Duration(r.Intn(int(2*lc.Jitter))) - lc.Jitter
		if delay < 0 {
			delay = 0
		}
	}
	c := &shapedConn{Conn: conn, link: lc, scale: scale, delay: delay, nextLoss: -1}
	if lc.LossEvery > 0 {
		c.nextLoss = int64(lc.LossEvery/2 + r.Intn(lc.LossEvery))
	}
	c.r = r
	return c
}

// shapedConn applies a LinkClass schedule to reads. Writes (requests
// are small) pass through unshaped. All mutable state is owned by this
// one connection — nothing is shared across the fleet.
type shapedConn struct {
	net.Conn
	link     LinkClass
	r        *xrand.Rand
	scale    float64
	delay    time.Duration // pending first-byte delay; 0 after first read
	read     int64
	nextLoss int64 // byte position of the next injected reset; -1 = never
}

// linkMTU caps one shaped read, so pacing sleeps stay fine-grained and
// a loss event lands near its drawn byte position.
const linkMTU = 1460

func (c *shapedConn) Read(p []byte) (int, error) {
	if c.delay > 0 {
		c.sleep(c.delay)
		c.delay = 0
	}
	if c.nextLoss >= 0 && c.read >= c.nextLoss {
		// The seeded loss event: kill the connection mid-body. The
		// fetch layer sees a reset and resumes with a Range request on
		// a fresh (freshly shaped) connection.
		c.Conn.Close()
		return 0, fmt.Errorf("link %s: injected loss after %d bytes", c.link.Name, c.read)
	}
	if len(p) > linkMTU {
		p = p[:linkMTU]
	}
	n, err := c.Conn.Read(p)
	c.read += int64(n)
	if n > 0 && c.link.Bandwidth > 0 {
		c.sleep(time.Duration(n) * time.Second / time.Duration(c.link.Bandwidth))
	}
	return n, err
}

func (c *shapedConn) sleep(d time.Duration) {
	d = time.Duration(float64(d) / c.scale)
	if d > 0 {
		time.Sleep(d)
	}
}
