// Package stream is the non-strict class loader: it consumes an
// interleaved virtual-file byte stream (paper §5.2) and makes classes and
// methods available incrementally, running the §3.1.1 verification steps
// as the bytes arrive — class-level checks when a global-data unit lands,
// per-method bytecode checks when a body unit lands.
//
// The wire format opens with an 18-byte stream header (magic, version,
// unit count, whole-stream digest) and frames each unit with a 13-byte
// header: class index (u16), unit kind (u8), payload length (u32),
// payload CRC32C (u32), and a 16-bit header check (see integrity.go). A
// class's global-data unit always precedes its body units; body units
// arrive in the class's file order (which, after restructuring, is
// predicted first-use order). Writer produces the stream from a
// restructured program; Loader consumes it from any io.Reader, verifies
// every unit's checksum on arrival, and reports an event per unit.
package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"

	"nonstrict/internal/classfile"
	"nonstrict/internal/obs"
	"nonstrict/internal/reorder"
	"nonstrict/internal/verify"
)

// Unit kinds.
const (
	KindGlobal = 0 // a class's global-data section
	KindBody   = 1 // one method body: local data + code + delimiter
)

const headerSize = 13

// UnitHeaderSize is the wire size of a unit header; a unit's header
// starts UnitHeaderSize bytes before its UnitInfo.Off.
const UnitHeaderSize = headerSize

// maxUnitSize bounds a single unit's payload; anything larger is a
// malformed stream regardless of what the header claims.
const maxUnitSize = 1 << 28

// MaxClasses is the largest class count a stream can carry: the unit
// header stores the class index as a u16.
const MaxClasses = 1<<16 - 1

// EventKind classifies loader progress events.
type EventKind int

const (
	// ClassLinked: a class's global data arrived, parsed, and passed
	// class-level verification; its methods are known but not yet
	// runnable.
	ClassLinked EventKind = iota
	// MethodReady: a method's body arrived and passed method-level
	// verification; the method may now execute.
	MethodReady
	// ClassComplete: every body of the class has arrived.
	ClassComplete
)

// Event is one loader progress notification.
type Event struct {
	Kind   EventKind
	Class  string
	Method classfile.Ref // set for MethodReady
	// Bytes is the cumulative stream bytes consumed when the event
	// fired (headers included).
	Bytes int64
}

// Writer emits the interleaved stream for a restructured program.
type Writer struct {
	units []unit
}

type unit struct {
	class  int
	cls    string // class name
	kind   byte
	body   int           // body index within the class; -1 for globals
	method classfile.Ref // delivered method; zero for globals
	data   []byte
}

// NewWriter plans the stream: each class's global data immediately before
// its first method in the order, then bodies in order. The program must
// already be restructured so that each class's file order equals the
// order's restriction to it.
func NewWriter(p *classfile.Program, ix *classfile.Index, o *reorder.Order) (*Writer, error) {
	if len(p.Classes) > MaxClasses {
		return nil, fmt.Errorf("stream: program has %d classes; the unit header's u16 class index holds at most %d",
			len(p.Classes), MaxClasses)
	}
	classIdx := make(map[string]int, len(p.Classes))
	serialized := make([][]byte, len(p.Classes))
	layouts := make([]classfile.Layout, len(p.Classes))
	nextBody := make([]int, len(p.Classes))
	for i, c := range p.Classes {
		classIdx[c.Name] = i
		serialized[i] = c.Serialize()
		layouts[i] = c.ComputeLayout()
	}
	w := &Writer{}
	sent := make([]bool, len(p.Classes))
	for _, id := range o.Methods {
		r := ix.Ref(id)
		ci, ok := classIdx[r.Class]
		if !ok {
			return nil, fmt.Errorf("stream: order names unknown class %q", r.Class)
		}
		if !sent[ci] {
			sent[ci] = true
			w.units = append(w.units, unit{class: ci, cls: r.Class, kind: KindGlobal, body: -1,
				data: serialized[ci][:layouts[ci].GlobalEnd]})
		}
		bi := nextBody[ci]
		if bi >= len(layouts[ci].Methods) {
			return nil, fmt.Errorf("stream: class %q has more ordered methods than bodies", r.Class)
		}
		// The order restricted to this class must match file order;
		// restructure.Apply guarantees it.
		c := p.Classes[ci]
		if got := c.MethodName(c.Methods[bi]); got != r.Name {
			return nil, fmt.Errorf("stream: class %q file order has %q where order expects %q (program not restructured?)",
				r.Class, got, r.Name)
		}
		ml := layouts[ci].Methods[bi]
		w.units = append(w.units, unit{class: ci, cls: r.Class, kind: KindBody, body: bi, method: r,
			data: serialized[ci][ml.BodyStart:ml.DelimEnd]})
		nextBody[ci]++
	}
	return w, nil
}

// WriteTo implements io.WriterTo: the stream header, then every unit,
// unthrottled.
func (w *Writer) WriteTo(out io.Writer) (int64, error) {
	var n int64
	shdr := make([]byte, streamHeaderSize)
	putStreamHeader(shdr, len(w.units), w.digest())
	k, err := out.Write(shdr)
	n += int64(k)
	if err != nil {
		return n, err
	}
	hdr := make([]byte, headerSize)
	for _, u := range w.units {
		putUnitHeader(hdr, u.class, u.kind, len(u.data), ChecksumPayload(u.data))
		k, err := out.Write(hdr)
		n += int64(k)
		if err != nil {
			return n, err
		}
		k, err = out.Write(u.data)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// digest computes the whole-stream digest: the CRC32C over every unit
// header and payload in stream order (everything after the stream
// header).
func (w *Writer) digest() uint32 {
	var d uint32
	hdr := make([]byte, headerSize)
	for _, u := range w.units {
		putUnitHeader(hdr, u.class, u.kind, len(u.data), ChecksumPayload(u.data))
		d = crc32.Update(d, crcTable, hdr)
		d = crc32.Update(d, crcTable, u.data)
	}
	return d
}

// Units returns the number of planned units.
func (w *Writer) Units() int { return len(w.units) }

// Size returns the total stream size in bytes, headers included.
func (w *Writer) Size() int64 {
	n := int64(streamHeaderSize)
	for _, u := range w.units {
		n += headerSize + int64(len(u.data))
	}
	return n
}

// UnitInfo describes one planned unit of the stream — the writer's
// offset table. A client holding the table can demand-fetch any unit out
// of predicted order with a byte-range request (the live runtime's
// misprediction correction, the §5.1 demand path applied to the §5.2
// virtual file).
type UnitInfo struct {
	// Class is the unit's class index within the stream.
	Class int `json:"class"`
	// ClassName is the class's name.
	ClassName string `json:"class_name"`
	// Kind is KindGlobal or KindBody.
	Kind byte `json:"kind"`
	// Body is the body index within the class; -1 for global units.
	Body int `json:"body"`
	// Method is the delivered method; zero for global units.
	Method classfile.Ref `json:"method"`
	// Off is the stream offset of the unit's payload (its 13-byte header
	// immediately precedes it).
	Off int64 `json:"off"`
	// Len is the payload length in bytes, header excluded.
	Len int `json:"len"`
	// CRC is the CRC32C of the payload, so a demand-fetched unit is
	// verified end to end before installation.
	CRC uint32 `json:"crc"`
}

// TOC returns the per-unit offset table of the planned stream.
func (w *Writer) TOC() []UnitInfo {
	toc := make([]UnitInfo, 0, len(w.units))
	off := int64(streamHeaderSize)
	for _, u := range w.units {
		off += headerSize
		toc = append(toc, UnitInfo{
			Class: u.class, Kind: u.kind, Body: u.body, Method: u.method,
			ClassName: u.cls, Off: off, Len: len(u.data), CRC: ChecksumPayload(u.data),
		})
		off += int64(len(u.data))
	}
	return toc
}

// MarshalTOC serializes a unit table for transport (the serve command
// publishes it next to the stream).
func MarshalTOC(toc []UnitInfo) ([]byte, error) { return json.Marshal(toc) }

// ParseTOC inverts MarshalTOC and validates the table's geometry. The
// demand-fetch path turns every entry into a byte-range request and
// installs the reply, so a hostile or damaged table must not be trusted
// blindly: entries must describe contiguous, in-bounds, monotonically
// increasing unit ranges exactly as the writer lays them out, with
// well-formed kind, class, and body fields.
func ParseTOC(data []byte) ([]UnitInfo, error) {
	var toc []UnitInfo
	if err := json.Unmarshal(data, &toc); err != nil {
		return nil, fmt.Errorf("stream: bad unit table: %w", err)
	}
	next := int64(streamHeaderSize + headerSize)
	for i, u := range toc {
		switch {
		case u.Kind != KindGlobal && u.Kind != KindBody:
			return nil, fmt.Errorf("stream: unit table entry %d: unknown kind %d", i, u.Kind)
		case u.Class < 0 || u.Class > MaxClasses:
			return nil, fmt.Errorf("stream: unit table entry %d: class index %d out of range", i, u.Class)
		case u.Kind == KindGlobal && u.Body != -1:
			return nil, fmt.Errorf("stream: unit table entry %d: global unit with body index %d", i, u.Body)
		case u.Kind == KindBody && u.Body < 0:
			return nil, fmt.Errorf("stream: unit table entry %d: body unit with body index %d", i, u.Body)
		case u.Len <= 0 || u.Len > maxUnitSize:
			return nil, fmt.Errorf("stream: unit table entry %d: payload length %d out of range", i, u.Len)
		case u.Off != next:
			// Catches overlapping, out-of-bounds, and non-monotonic
			// ranges at once: the writer emits units back to back, so
			// each payload must start exactly one header past the end of
			// the previous payload.
			return nil, fmt.Errorf("stream: unit table entry %d: payload at offset %d, want %d (overlapping, out-of-bounds, or non-monotonic range)",
				i, u.Off, next)
		}
		next = u.Off + int64(u.Len) + headerSize
	}
	return toc, nil
}

// ErrBadStream wraps framing and consistency failures.
var ErrBadStream = errors.New("stream: malformed stream")

// Loader consumes a unit stream and assembles a runnable program,
// verifying incrementally. The zero value is not usable; call NewLoader.
//
// A Loader is safe for concurrent use: the main stream (Load), demand
// fetches (FeedDemand), and readers of the incremental link state
// (Resolver, LoadedClass, UnitsConsumed) may run in separate goroutines.
// Units delivered twice — a demand-fetched unit later re-arriving in the
// main stream, or vice versa — are verified and installed exactly once,
// and fire their events exactly once.
type Loader struct {
	mainClass string
	name      string
	resolver  verify.Resolver

	// Repair, when non-nil, is invoked (with no loader locks held) for
	// each main-stream unit whose payload fails its checksum: it should
	// return a fresh copy of the payload, typically via a byte-range
	// re-fetch against the writer's unit table. The loader re-verifies
	// every returned payload and retries up to RepairAttempts times; a
	// unit that stays corrupt is quarantined and skipped rather than
	// installed, and the stream continues. With Repair nil, a corrupt
	// unit is a terminal ErrStreamIntegrity error instead — the strict
	// behaviour for clients with no demand path to heal through. Set
	// both fields before calling Load; they must not change during it.
	Repair func(RepairRequest) ([]byte, error)
	// RepairAttempts caps Repair invocations per corrupt unit (0 = 3).
	RepairAttempts int
	// Obs, when non-nil, receives integrity events: unit arrivals,
	// checksum failures, repairs, quarantines. Set before Load; must not
	// change while loading.
	Obs *obs.Recorder

	mu         sync.Mutex
	classes    map[int]*classfile.Class
	layouts    map[int]classfile.Layout
	present    map[int][]bool // per class: which body units have arrived
	ready      map[int]int    // per class: count of arrived bodies
	mainNext   map[int]int    // per class: next body index in the main stream
	fromDemand map[int]bool   // class's global unit arrived via FeedDemand
	mainUnits  int            // units consumed from the main stream
	consumed   int64          // main-stream bytes, headers included
	demanded   int64          // demand-fetched payload bytes

	quarGlobal  map[int]bool                // class's global unit is quarantined
	quarantined map[quarKey]QuarantinedUnit // corrupt units awaiting a clean copy
	integ       IntegrityStats
}

// NewLoader builds a loader for a program named name whose entry class
// is mainClass. resolver answers cross-class verification queries and
// may be nil to defer them (the paper's incremental dependence
// analysis); use Resolver() to verify against the classes loaded so far.
func NewLoader(name, mainClass string, resolver verify.Resolver) *Loader {
	return &Loader{
		name:        name,
		mainClass:   mainClass,
		resolver:    resolver,
		classes:     make(map[int]*classfile.Class),
		layouts:     make(map[int]classfile.Layout),
		present:     make(map[int][]bool),
		ready:       make(map[int]int),
		mainNext:    make(map[int]int),
		fromDemand:  make(map[int]bool),
		quarGlobal:  make(map[int]bool),
		quarantined: make(map[quarKey]QuarantinedUnit),
	}
}

// Load consumes the whole stream from r, invoking onEvent (if non-nil)
// after each verified unit. Events are delivered outside the loader's
// lock, so the callback may call back into the loader.
//
// Every unit's payload is verified against its header checksum before
// installation; corrupt payloads go through the Repair hook (see the
// field docs) or, without one, fail the load. At EOF the unit count and
// the whole-stream digest from the stream header are checked, so a
// truncated-at-a-unit-boundary stream or a corruption that slipped the
// per-unit checks still surfaces as an error rather than a silently
// incomplete program.
func (l *Loader) Load(r io.Reader, onEvent func(Event)) error {
	shdr := make([]byte, streamHeaderSize)
	if _, err := io.ReadFull(r, shdr); err != nil {
		return fmt.Errorf("%w: reading stream header: %v", ErrBadStream, err)
	}
	unitCount, wantDigest, err := parseStreamHeader(shdr)
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.consumed += streamHeaderSize
	l.mu.Unlock()
	var digest uint32
	digestKnown := true // false once a quarantined unit's true bytes are unknown
	units := 0
	hdr := make([]byte, headerSize)
	for {
		if _, err := io.ReadFull(r, hdr); err == io.EOF {
			if units != unitCount {
				return fmt.Errorf("%w: stream ended after %d of %d units (truncated at a unit boundary)",
					ErrBadStream, units, unitCount)
			}
			l.mu.Lock()
			if digestKnown && len(l.quarantined) == 0 {
				if digest != wantDigest {
					l.mu.Unlock()
					return fmt.Errorf("%w: whole-stream digest %08x, header promised %08x", ErrStreamIntegrity, digest, wantDigest)
				}
				l.integ.DigestVerified = true
			}
			l.mu.Unlock()
			return nil
		} else if err != nil {
			return fmt.Errorf("%w: reading unit header: %v", ErrBadStream, err)
		}
		ci, kind, n, crc, err := parseUnitHeader(hdr)
		if err != nil {
			// A corrupted header means the framing of everything after
			// it is unreliable; there is no way to resync from within
			// the stream, so this is terminal. (A demand-fetching client
			// degrades to pulling the remaining units by range.)
			return err
		}
		if n > maxUnitSize {
			return fmt.Errorf("%w: unit of %d bytes", ErrBadStream, n)
		}
		// Payload buffers are pooled: a unit that installs retains its
		// buffer forever, but duplicates (demand fetches racing the main
		// stream), corrupt copies, and quarantine-skipped bodies discard
		// theirs, and those are recycled instead of re-allocated.
		payload := getPayloadBuf(n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return fmt.Errorf("%w: reading %d-byte unit: %v", ErrBadStream, n, err)
		}
		units++
		if ChecksumPayload(payload) != crc {
			putPayloadBuf(payload) // the corrupt copy is dead either way
			repaired, err := l.repairUnit(ci, kind, n, crc)
			if err != nil {
				return err
			}
			payload = repaired // nil = quarantined
		}
		if payload == nil {
			digestKnown = false
			l.quarantine(ci, kind, n, crc)
			continue
		}
		digest = crc32.Update(digest, crcTable, hdr)
		digest = crc32.Update(digest, crcTable, payload)
		l.mu.Lock()
		l.consumed += headerSize + int64(n)
		ev, retained, err := l.feed(ci, kind, payload)
		l.mainUnits++
		l.mu.Unlock()
		if err != nil {
			return err
		}
		if !retained {
			putPayloadBuf(payload)
		}
		l.Obs.Emit(obs.UnitArrived, fmt.Sprintf("class %d %s", ci, kindName(kind)), int64(n), 0)
		if onEvent != nil {
			for _, e := range ev {
				onEvent(e)
			}
		}
	}
}

// repairUnit handles one corrupt main-stream unit: it asks the Repair
// hook for a clean copy, bounded by RepairAttempts, verifying each
// returned payload. It returns the repaired payload, or (nil, nil) when
// the unit must be quarantined, or a terminal error when no Repair hook
// is installed (strict mode). Called with no locks held.
func (l *Loader) repairUnit(ci int, kind byte, n int, crc uint32) ([]byte, error) {
	began := time.Now()
	l.mu.Lock()
	l.integ.CorruptUnits++
	repair := l.Repair
	body := -1
	if kind == KindBody {
		body = l.mainNext[ci]
	}
	l.mu.Unlock()
	l.Obs.Emit(obs.CRCFail, fmt.Sprintf("class %d %s", ci, kindName(kind)), int64(n), 0)
	if repair == nil {
		return nil, fmt.Errorf("%w: class %d %s unit: payload checksum mismatch and no repair path",
			ErrStreamIntegrity, ci, kindName(kind))
	}
	attempts := l.RepairAttempts
	if attempts <= 0 {
		attempts = 3
	}
	for a := 1; a <= attempts; a++ {
		l.mu.Lock()
		l.integ.RepairAttempts++
		l.mu.Unlock()
		p, err := repair(RepairRequest{Class: ci, Kind: kind, Body: body, Len: n, CRC: crc, Attempt: a})
		if err != nil || len(p) != n || ChecksumPayload(p) != crc {
			continue
		}
		l.mu.Lock()
		l.integ.Repaired++
		l.mu.Unlock()
		l.Obs.Emit(obs.Repaired, fmt.Sprintf("class %d %s", ci, kindName(kind)), int64(n), time.Since(began))
		return p, nil
	}
	return nil, nil
}

// quarantine records a unit that arrived corrupt and could not be
// repaired. The stream cursor still advances past it — the unit is
// skipped, not installed — so a later demand fetch can deliver a clean
// copy through FeedDemand.
func (l *Loader) quarantine(ci int, kind byte, n int, crc uint32) {
	l.mu.Lock()
	defer l.mu.Unlock()
	body := -1
	installed := false
	if kind == KindBody {
		body = l.mainNext[ci]
		l.mainNext[ci] = body + 1
		installed = body < len(l.present[ci]) && l.present[ci][body]
	} else {
		_, installed = l.classes[ci]
	}
	l.consumed += headerSize + int64(n)
	l.mainUnits++
	if installed {
		// A clean demand copy landed while this unit's repair attempts
		// were failing, so there is nothing left to heal: the cursor has
		// advanced past the corrupt copy and the unit is installed.
		// Recording a quarantine here would leave a permanently stale
		// entry — FeedDemand skips already-present units, so nothing
		// would ever clear it — pinning Outstanding above zero and, for a
		// global unit, shadow-quarantining every later clean body of the
		// class.
		if kind == KindGlobal {
			// The main stream's only copy of this global is spent; the
			// usual duplicate-global redelivery cannot happen.
			delete(l.fromDemand, ci)
		}
		return
	}
	if kind != KindBody {
		l.quarGlobal[ci] = true
	}
	l.quarantined[quarKey{ci, kind, body}] = QuarantinedUnit{Class: ci, Kind: kind, Body: body, Len: n, CRC: crc}
	l.integ.Quarantined++
	l.Obs.Emit(obs.Quarantined, fmt.Sprintf("class %d %s", ci, kindName(kind)), int64(n), 0)
}

func kindName(kind byte) string {
	switch kind {
	case KindGlobal:
		return "global"
	case KindBody:
		return "body"
	}
	return fmt.Sprintf("kind-%d", kind)
}

// feed processes one main-stream unit and returns the events it
// produced. retained reports whether the payload buffer was installed
// (and so must never be recycled); skipped duplicates and
// quarantine-shadowed bodies leave it free for the pool. Callers hold
// l.mu.
func (l *Loader) feed(ci int, kind byte, payload []byte) (ev []Event, retained bool, err error) {
	switch kind {
	case KindGlobal:
		if _, dup := l.classes[ci]; dup {
			if l.fromDemand[ci] {
				// The demand path already delivered this class's global
				// data; the main stream's copy is redundant.
				l.fromDemand[ci] = false
				return nil, false, nil
			}
			return nil, false, fmt.Errorf("%w: duplicate global unit for class %d", ErrBadStream, ci)
		}
		ev, err = l.installGlobal(ci, payload)
		return ev, err == nil, err

	case KindBody:
		c, ok := l.classes[ci]
		if !ok {
			if l.quarGlobal[ci] {
				// The class's global unit is quarantined, so this body —
				// even though its own checksum passed — cannot be
				// verified or installed: there is no layout to check it
				// against. Quarantine it alongside the global; the
				// demand path redelivers both.
				bi := l.mainNext[ci]
				l.mainNext[ci] = bi + 1
				l.quarantined[quarKey{ci, KindBody, bi}] = QuarantinedUnit{
					Class: ci, Kind: KindBody, Body: bi, Len: len(payload), CRC: ChecksumPayload(payload)}
				l.integ.Quarantined++
				return nil, false, nil
			}
			return nil, false, fmt.Errorf("%w: body before global data for class %d", ErrBadStream, ci)
		}
		bi := l.mainNext[ci]
		if bi >= len(c.Methods) {
			return nil, false, fmt.Errorf("%w: class %s: extra body unit", ErrBadStream, c.Name)
		}
		l.mainNext[ci] = bi + 1
		if l.present[ci][bi] {
			// Already demand-fetched out of order; skip the re-delivery.
			return nil, false, nil
		}
		ev, err = l.installBody(ci, bi, payload)
		return ev, err == nil, err

	default:
		return nil, false, fmt.Errorf("%w: unknown unit kind %d", ErrBadStream, kind)
	}
}

// FeedDemand installs one demand-fetched unit — a misprediction
// correction pulled out of predicted order via a byte-range request
// against the writer's unit table. The payload is verified against crc
// (the unit table's checksum for it) before anything is installed. Body
// units require the class's global unit first (fetch it through
// FeedDemand too if the main stream has not delivered it). Units that
// already arrived are skipped without error, so the demand path may race
// the main stream freely, and a clean demand copy clears any quarantine
// the main stream left behind for the unit.
func (l *Loader) FeedDemand(ci int, kind byte, body int, payload []byte, crc uint32) ([]Event, error) {
	if ChecksumPayload(payload) != crc {
		return nil, fmt.Errorf("%w: demand-fetched %s unit for class %d failed its checksum",
			ErrStreamIntegrity, kindName(kind), ci)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.demanded += int64(len(payload))
	switch kind {
	case KindGlobal:
		if _, dup := l.classes[ci]; dup {
			return nil, nil
		}
		ev, err := l.installGlobal(ci, payload)
		if err == nil {
			l.fromDemand[ci] = true
			if l.quarGlobal[ci] {
				delete(l.quarGlobal, ci)
				l.unquarantine(quarKey{ci, KindGlobal, -1})
				// The main stream consumed its corrupt copy already; the
				// usual duplicate-global redelivery cannot happen.
				l.fromDemand[ci] = false
			}
		}
		return ev, err
	case KindBody:
		c, ok := l.classes[ci]
		if !ok {
			return nil, fmt.Errorf("stream: demand body for class %d before its global data", ci)
		}
		if body < 0 || body >= len(c.Methods) {
			return nil, fmt.Errorf("stream: demand body %d of class %s out of range [0,%d)", body, c.Name, len(c.Methods))
		}
		if l.present[ci][body] {
			return nil, nil
		}
		ev, err := l.installBody(ci, body, payload)
		if err == nil {
			l.unquarantine(quarKey{ci, KindBody, body})
		}
		return ev, err
	default:
		return nil, fmt.Errorf("stream: demand unit of unknown kind %d", kind)
	}
}

// unquarantine clears a unit's quarantine record once a clean copy has
// been installed. Callers hold l.mu.
func (l *Loader) unquarantine(k quarKey) {
	delete(l.quarantined, k)
}

// Integrity returns a snapshot of the loader's verification counters.
func (l *Loader) Integrity() IntegrityStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.integ
	st.Outstanding = len(l.quarantined)
	return st
}

// Quarantined lists the units that arrived corrupt and have not yet been
// replaced by a clean copy.
func (l *Loader) Quarantined() []QuarantinedUnit {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]QuarantinedUnit, 0, len(l.quarantined))
	for _, q := range l.quarantined {
		out = append(out, q)
	}
	return out
}

// installGlobal parses, verifies, and registers a class's global data.
// Callers hold l.mu.
func (l *Loader) installGlobal(ci int, payload []byte) ([]Event, error) {
	c, lay, err := classfile.ParseGlobal(payload)
	if err != nil {
		return nil, fmt.Errorf("%w: class %d: %v", ErrBadStream, ci, err)
	}
	if err := verify.VerifyGlobal(c); err != nil {
		return nil, err
	}
	l.classes[ci] = c
	l.layouts[ci] = lay
	l.present[ci] = make([]bool, len(c.Methods))
	return []Event{{Kind: ClassLinked, Class: c.Name, Bytes: l.consumed}}, nil
}

// installBody verifies and installs one method body. Callers hold l.mu
// and have checked that the body is absent and in range.
func (l *Loader) installBody(ci, bi int, payload []byte) ([]Event, error) {
	c := l.classes[ci]
	m := c.Methods[bi]
	ml := l.layouts[ci].Methods[bi]
	localLen := ml.CodeStart - ml.BodyStart
	codeLen := ml.DelimEnd - classfile.DelimSize - ml.CodeStart
	if len(payload) != localLen+codeLen+classfile.DelimSize {
		return nil, fmt.Errorf("%w: class %s method %d: body is %d bytes, header promised %d",
			ErrBadStream, c.Name, bi, len(payload), localLen+codeLen+classfile.DelimSize)
	}
	if [classfile.DelimSize]byte(payload[localLen+codeLen:]) != classfile.Delim {
		return nil, fmt.Errorf("%w: class %s method %d: bad delimiter", ErrBadStream, c.Name, bi)
	}
	m.LocalData = payload[:localLen:localLen]
	m.Code = payload[localLen : localLen+codeLen : localLen+codeLen]
	res := l.resolver
	if lr, ok := res.(loaderResolver); ok && lr.l == l {
		res = rawResolver{l} // avoid self-deadlock on l.mu
	}
	if err := verify.VerifyMethod(c, m, res); err != nil {
		return nil, err
	}
	l.present[ci][bi] = true
	l.ready[ci]++
	ref := classfile.Ref{Class: c.Name, Name: c.MethodName(m)}
	events := []Event{{Kind: MethodReady, Class: c.Name, Method: ref, Bytes: l.consumed}}
	if l.ready[ci] == len(c.Methods) {
		events = append(events, Event{Kind: ClassComplete, Class: c.Name, Bytes: l.consumed})
	}
	return events, nil
}

// Program assembles the loaded classes. It fails if any method body is
// still missing.
func (l *Loader) Program() (*classfile.Program, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	p := &classfile.Program{Name: l.name, MainClass: l.mainClass}
	for ci := 0; ; ci++ {
		c, ok := l.classes[ci]
		if !ok {
			break
		}
		if l.ready[ci] != len(c.Methods) {
			if n := len(l.quarantined); n > 0 {
				return nil, fmt.Errorf("stream: class %s has %d of %d method bodies (%d corrupt units quarantined and never repaired)",
					c.Name, l.ready[ci], len(c.Methods), n)
			}
			return nil, fmt.Errorf("stream: class %s has %d of %d method bodies",
				c.Name, l.ready[ci], len(c.Methods))
		}
		p.Classes = append(p.Classes, c)
	}
	if len(p.Classes) != len(l.classes) {
		return nil, fmt.Errorf("stream: class indices are not contiguous")
	}
	if p.Class(l.mainClass) == nil {
		return nil, fmt.Errorf("stream: entry class %q never arrived", l.mainClass)
	}
	return p, nil
}

// Consumed returns the main-stream bytes processed so far.
func (l *Loader) Consumed() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.consumed
}

// DemandBytes returns the payload bytes delivered through FeedDemand.
func (l *Loader) DemandBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.demanded
}

// UnitsConsumed returns the number of units the main stream has
// delivered — the cursor a demand-fetching client compares unit-table
// indices against to detect out-of-predicted-order needs.
func (l *Loader) UnitsConsumed() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mainUnits
}

// LoadedClass returns the named class if its global data has arrived,
// else nil.
func (l *Loader) LoadedClass(name string) *classfile.Class {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.classes {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Resolver returns a verify.Resolver answering from the classes whose
// global data has arrived so far — the incremental link state of the
// paper's §3.1.1 ("interprocedural dependence analysis is performed as
// methods are loaded and verified"). The resolver is safe for concurrent
// use with the loader.
func (l *Loader) Resolver() verify.Resolver { return loaderResolver{l} }

// loaderResolver is the exported, locking view of the link state.
type loaderResolver struct{ l *Loader }

func (r loaderResolver) MethodArity(class, name string) (int, int, bool) {
	r.l.mu.Lock()
	defer r.l.mu.Unlock()
	return rawResolver(r).MethodArity(class, name)
}

func (r loaderResolver) HasField(class, name string) (bool, bool) {
	r.l.mu.Lock()
	defer r.l.mu.Unlock()
	return rawResolver(r).HasField(class, name)
}

// rawResolver answers without locking; used internally while l.mu is
// already held.
type rawResolver struct{ l *Loader }

func (r rawResolver) MethodArity(class, name string) (int, int, bool) {
	for _, c := range r.l.classes {
		if c.Name != class {
			continue
		}
		m := c.MethodByName(name)
		if m == nil {
			return 0, 0, true // class known, method definitively missing
		}
		return m.NArgs, m.NRet, true
	}
	return 0, 0, false // class not yet arrived: defer
}

func (r rawResolver) HasField(class, name string) (bool, bool) {
	for _, c := range r.l.classes {
		if c.Name != class {
			continue
		}
		for _, f := range c.Fields {
			if c.Utf8(f.Name) == name {
				return true, true
			}
		}
		return false, true
	}
	return false, false
}
