// Package stream is the non-strict class loader: it consumes an
// interleaved virtual-file byte stream (paper §5.2) and makes classes and
// methods available incrementally, running the §3.1.1 verification steps
// as the bytes arrive — class-level checks when a global-data unit lands,
// per-method bytecode checks when a body unit lands.
//
// The wire format frames each unit with a 7-byte header: class index
// (u16), unit kind (u8), payload length (u32). A class's global-data unit
// always precedes its body units; body units arrive in the class's file
// order (which, after restructuring, is predicted first-use order).
// Writer produces the stream from a restructured program; Loader consumes
// it from any io.Reader and reports an event per unit.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"nonstrict/internal/classfile"
	"nonstrict/internal/reorder"
	"nonstrict/internal/verify"
)

// Unit kinds.
const (
	KindGlobal = 0 // a class's global-data section
	KindBody   = 1 // one method body: local data + code + delimiter
)

const headerSize = 7

// EventKind classifies loader progress events.
type EventKind int

const (
	// ClassLinked: a class's global data arrived, parsed, and passed
	// class-level verification; its methods are known but not yet
	// runnable.
	ClassLinked EventKind = iota
	// MethodReady: a method's body arrived and passed method-level
	// verification; the method may now execute.
	MethodReady
	// ClassComplete: every body of the class has arrived.
	ClassComplete
)

// Event is one loader progress notification.
type Event struct {
	Kind   EventKind
	Class  string
	Method classfile.Ref // set for MethodReady
	// Bytes is the cumulative stream bytes consumed when the event
	// fired (headers included).
	Bytes int64
}

// Writer emits the interleaved stream for a restructured program.
type Writer struct {
	units []unit
}

type unit struct {
	class int
	kind  byte
	data  []byte
}

// NewWriter plans the stream: each class's global data immediately before
// its first method in the order, then bodies in order. The program must
// already be restructured so that each class's file order equals the
// order's restriction to it.
func NewWriter(p *classfile.Program, ix *classfile.Index, o *reorder.Order) (*Writer, error) {
	classIdx := make(map[string]int, len(p.Classes))
	serialized := make([][]byte, len(p.Classes))
	layouts := make([]classfile.Layout, len(p.Classes))
	nextBody := make([]int, len(p.Classes))
	for i, c := range p.Classes {
		classIdx[c.Name] = i
		serialized[i] = c.Serialize()
		layouts[i] = c.ComputeLayout()
	}
	w := &Writer{}
	sent := make([]bool, len(p.Classes))
	for _, id := range o.Methods {
		r := ix.Ref(id)
		ci, ok := classIdx[r.Class]
		if !ok {
			return nil, fmt.Errorf("stream: order names unknown class %q", r.Class)
		}
		if !sent[ci] {
			sent[ci] = true
			w.units = append(w.units, unit{class: ci, kind: KindGlobal,
				data: serialized[ci][:layouts[ci].GlobalEnd]})
		}
		bi := nextBody[ci]
		if bi >= len(layouts[ci].Methods) {
			return nil, fmt.Errorf("stream: class %q has more ordered methods than bodies", r.Class)
		}
		// The order restricted to this class must match file order;
		// restructure.Apply guarantees it.
		c := p.Classes[ci]
		if got := c.MethodName(c.Methods[bi]); got != r.Name {
			return nil, fmt.Errorf("stream: class %q file order has %q where order expects %q (program not restructured?)",
				r.Class, got, r.Name)
		}
		ml := layouts[ci].Methods[bi]
		w.units = append(w.units, unit{class: ci, kind: KindBody,
			data: serialized[ci][ml.BodyStart:ml.DelimEnd]})
		nextBody[ci]++
	}
	return w, nil
}

// WriteTo implements io.WriterTo: the whole stream, unthrottled.
func (w *Writer) WriteTo(out io.Writer) (int64, error) {
	var n int64
	hdr := make([]byte, headerSize)
	for _, u := range w.units {
		binary.BigEndian.PutUint16(hdr[0:], uint16(u.class))
		hdr[2] = u.kind
		binary.BigEndian.PutUint32(hdr[3:], uint32(len(u.data)))
		k, err := out.Write(hdr)
		n += int64(k)
		if err != nil {
			return n, err
		}
		k, err = out.Write(u.data)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Units returns the number of planned units.
func (w *Writer) Units() int { return len(w.units) }

// Size returns the total stream size in bytes, headers included.
func (w *Writer) Size() int64 {
	var n int64
	for _, u := range w.units {
		n += headerSize + int64(len(u.data))
	}
	return n
}

// ErrBadStream wraps framing and consistency failures.
var ErrBadStream = errors.New("stream: malformed stream")

// Loader consumes a unit stream and assembles a runnable program,
// verifying incrementally. The zero value is not usable; call NewLoader.
type Loader struct {
	mainClass string
	name      string
	resolver  verify.Resolver

	classes  map[int]*classfile.Class
	layouts  map[int]classfile.Layout
	nextBody map[int]int
	consumed int64
}

// NewLoader builds a loader for a program named name whose entry class
// is mainClass. resolver answers cross-class verification queries and
// may be nil to defer them (the paper's incremental dependence
// analysis); use Resolver() to verify against the classes loaded so far.
func NewLoader(name, mainClass string, resolver verify.Resolver) *Loader {
	return &Loader{
		name:      name,
		mainClass: mainClass,
		resolver:  resolver,
		classes:   make(map[int]*classfile.Class),
		layouts:   make(map[int]classfile.Layout),
		nextBody:  make(map[int]int),
	}
}

// Load consumes the whole stream from r, invoking onEvent (if non-nil)
// after each verified unit.
func (l *Loader) Load(r io.Reader, onEvent func(Event)) error {
	hdr := make([]byte, headerSize)
	for {
		if _, err := io.ReadFull(r, hdr); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("%w: reading unit header: %v", ErrBadStream, err)
		}
		ci := int(binary.BigEndian.Uint16(hdr[0:]))
		kind := hdr[2]
		n := int(binary.BigEndian.Uint32(hdr[3:]))
		if n > 1<<28 {
			return fmt.Errorf("%w: unit of %d bytes", ErrBadStream, n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return fmt.Errorf("%w: reading %d-byte unit: %v", ErrBadStream, n, err)
		}
		l.consumed += headerSize + int64(n)
		ev, err := l.feed(ci, kind, payload)
		if err != nil {
			return err
		}
		if onEvent != nil {
			for _, e := range ev {
				onEvent(e)
			}
		}
	}
}

// feed processes one unit and returns the events it produced.
func (l *Loader) feed(ci int, kind byte, payload []byte) ([]Event, error) {
	switch kind {
	case KindGlobal:
		if _, dup := l.classes[ci]; dup {
			return nil, fmt.Errorf("%w: duplicate global unit for class %d", ErrBadStream, ci)
		}
		c, lay, err := classfile.ParseGlobal(payload)
		if err != nil {
			return nil, fmt.Errorf("%w: class %d: %v", ErrBadStream, ci, err)
		}
		if err := verify.VerifyGlobal(c); err != nil {
			return nil, err
		}
		l.classes[ci] = c
		l.layouts[ci] = lay
		return []Event{{Kind: ClassLinked, Class: c.Name, Bytes: l.consumed}}, nil

	case KindBody:
		c, ok := l.classes[ci]
		if !ok {
			return nil, fmt.Errorf("%w: body before global data for class %d", ErrBadStream, ci)
		}
		bi := l.nextBody[ci]
		if bi >= len(c.Methods) {
			return nil, fmt.Errorf("%w: class %s: extra body unit", ErrBadStream, c.Name)
		}
		m := c.Methods[bi]
		ml := l.layouts[ci].Methods[bi]
		localLen := ml.CodeStart - ml.BodyStart
		codeLen := ml.DelimEnd - classfile.DelimSize - ml.CodeStart
		if len(payload) != localLen+codeLen+classfile.DelimSize {
			return nil, fmt.Errorf("%w: class %s method %d: body is %d bytes, header promised %d",
				ErrBadStream, c.Name, bi, len(payload), localLen+codeLen+classfile.DelimSize)
		}
		if [classfile.DelimSize]byte(payload[localLen+codeLen:]) != classfile.Delim {
			return nil, fmt.Errorf("%w: class %s method %d: bad delimiter", ErrBadStream, c.Name, bi)
		}
		m.LocalData = payload[:localLen:localLen]
		m.Code = payload[localLen : localLen+codeLen : localLen+codeLen]
		if err := verify.VerifyMethod(c, m, l.resolver); err != nil {
			return nil, err
		}
		l.nextBody[ci] = bi + 1
		ref := classfile.Ref{Class: c.Name, Name: c.MethodName(m)}
		events := []Event{{Kind: MethodReady, Class: c.Name, Method: ref, Bytes: l.consumed}}
		if l.nextBody[ci] == len(c.Methods) {
			events = append(events, Event{Kind: ClassComplete, Class: c.Name, Bytes: l.consumed})
		}
		return events, nil

	default:
		return nil, fmt.Errorf("%w: unknown unit kind %d", ErrBadStream, kind)
	}
}

// Program assembles the loaded classes. It fails if any method body is
// still missing.
func (l *Loader) Program() (*classfile.Program, error) {
	p := &classfile.Program{Name: l.name, MainClass: l.mainClass}
	for ci := 0; ; ci++ {
		c, ok := l.classes[ci]
		if !ok {
			break
		}
		if l.nextBody[ci] != len(c.Methods) {
			return nil, fmt.Errorf("stream: class %s has %d of %d method bodies",
				c.Name, l.nextBody[ci], len(c.Methods))
		}
		p.Classes = append(p.Classes, c)
	}
	if len(p.Classes) != len(l.classes) {
		return nil, fmt.Errorf("stream: class indices are not contiguous")
	}
	if p.Class(l.mainClass) == nil {
		return nil, fmt.Errorf("stream: entry class %q never arrived", l.mainClass)
	}
	return p, nil
}

// Consumed returns the stream bytes processed so far.
func (l *Loader) Consumed() int64 { return l.consumed }

// Resolver returns a verify.Resolver answering from the classes whose
// global data has arrived so far — the incremental link state of the
// paper's §3.1.1 ("interprocedural dependence analysis is performed as
// methods are loaded and verified").
func (l *Loader) Resolver() verify.Resolver { return loaderResolver{l} }

type loaderResolver struct{ l *Loader }

func (r loaderResolver) MethodArity(class, name string) (int, int, bool) {
	for _, c := range r.l.classes {
		if c.Name != class {
			continue
		}
		m := c.MethodByName(name)
		if m == nil {
			return 0, 0, true // class known, method definitively missing
		}
		return m.NArgs, m.NRet, true
	}
	return 0, 0, false // class not yet arrived: defer
}

func (r loaderResolver) HasField(class, name string) (bool, bool) {
	for _, c := range r.l.classes {
		if c.Name != class {
			continue
		}
		for _, f := range c.Fields {
			if c.Utf8(f.Name) == name {
				return true, true
			}
		}
		return false, true
	}
	return false, false
}
