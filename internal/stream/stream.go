// Package stream is the non-strict class loader: it consumes an
// interleaved virtual-file byte stream (paper §5.2) and makes classes and
// methods available incrementally, running the §3.1.1 verification steps
// as the bytes arrive — class-level checks when a global-data unit lands,
// per-method bytecode checks when a body unit lands.
//
// The wire format frames each unit with a 7-byte header: class index
// (u16), unit kind (u8), payload length (u32). A class's global-data unit
// always precedes its body units; body units arrive in the class's file
// order (which, after restructuring, is predicted first-use order).
// Writer produces the stream from a restructured program; Loader consumes
// it from any io.Reader and reports an event per unit.
package stream

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"nonstrict/internal/classfile"
	"nonstrict/internal/reorder"
	"nonstrict/internal/verify"
)

// Unit kinds.
const (
	KindGlobal = 0 // a class's global-data section
	KindBody   = 1 // one method body: local data + code + delimiter
)

const headerSize = 7

// MaxClasses is the largest class count a stream can carry: the unit
// header stores the class index as a u16.
const MaxClasses = 1<<16 - 1

// EventKind classifies loader progress events.
type EventKind int

const (
	// ClassLinked: a class's global data arrived, parsed, and passed
	// class-level verification; its methods are known but not yet
	// runnable.
	ClassLinked EventKind = iota
	// MethodReady: a method's body arrived and passed method-level
	// verification; the method may now execute.
	MethodReady
	// ClassComplete: every body of the class has arrived.
	ClassComplete
)

// Event is one loader progress notification.
type Event struct {
	Kind   EventKind
	Class  string
	Method classfile.Ref // set for MethodReady
	// Bytes is the cumulative stream bytes consumed when the event
	// fired (headers included).
	Bytes int64
}

// Writer emits the interleaved stream for a restructured program.
type Writer struct {
	units []unit
}

type unit struct {
	class  int
	cls    string // class name
	kind   byte
	body   int           // body index within the class; -1 for globals
	method classfile.Ref // delivered method; zero for globals
	data   []byte
}

// NewWriter plans the stream: each class's global data immediately before
// its first method in the order, then bodies in order. The program must
// already be restructured so that each class's file order equals the
// order's restriction to it.
func NewWriter(p *classfile.Program, ix *classfile.Index, o *reorder.Order) (*Writer, error) {
	if len(p.Classes) > MaxClasses {
		return nil, fmt.Errorf("stream: program has %d classes; the unit header's u16 class index holds at most %d",
			len(p.Classes), MaxClasses)
	}
	classIdx := make(map[string]int, len(p.Classes))
	serialized := make([][]byte, len(p.Classes))
	layouts := make([]classfile.Layout, len(p.Classes))
	nextBody := make([]int, len(p.Classes))
	for i, c := range p.Classes {
		classIdx[c.Name] = i
		serialized[i] = c.Serialize()
		layouts[i] = c.ComputeLayout()
	}
	w := &Writer{}
	sent := make([]bool, len(p.Classes))
	for _, id := range o.Methods {
		r := ix.Ref(id)
		ci, ok := classIdx[r.Class]
		if !ok {
			return nil, fmt.Errorf("stream: order names unknown class %q", r.Class)
		}
		if !sent[ci] {
			sent[ci] = true
			w.units = append(w.units, unit{class: ci, cls: r.Class, kind: KindGlobal, body: -1,
				data: serialized[ci][:layouts[ci].GlobalEnd]})
		}
		bi := nextBody[ci]
		if bi >= len(layouts[ci].Methods) {
			return nil, fmt.Errorf("stream: class %q has more ordered methods than bodies", r.Class)
		}
		// The order restricted to this class must match file order;
		// restructure.Apply guarantees it.
		c := p.Classes[ci]
		if got := c.MethodName(c.Methods[bi]); got != r.Name {
			return nil, fmt.Errorf("stream: class %q file order has %q where order expects %q (program not restructured?)",
				r.Class, got, r.Name)
		}
		ml := layouts[ci].Methods[bi]
		w.units = append(w.units, unit{class: ci, cls: r.Class, kind: KindBody, body: bi, method: r,
			data: serialized[ci][ml.BodyStart:ml.DelimEnd]})
		nextBody[ci]++
	}
	return w, nil
}

// WriteTo implements io.WriterTo: the whole stream, unthrottled.
func (w *Writer) WriteTo(out io.Writer) (int64, error) {
	var n int64
	hdr := make([]byte, headerSize)
	for _, u := range w.units {
		binary.BigEndian.PutUint16(hdr[0:], uint16(u.class))
		hdr[2] = u.kind
		binary.BigEndian.PutUint32(hdr[3:], uint32(len(u.data)))
		k, err := out.Write(hdr)
		n += int64(k)
		if err != nil {
			return n, err
		}
		k, err = out.Write(u.data)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Units returns the number of planned units.
func (w *Writer) Units() int { return len(w.units) }

// Size returns the total stream size in bytes, headers included.
func (w *Writer) Size() int64 {
	var n int64
	for _, u := range w.units {
		n += headerSize + int64(len(u.data))
	}
	return n
}

// UnitInfo describes one planned unit of the stream — the writer's
// offset table. A client holding the table can demand-fetch any unit out
// of predicted order with a byte-range request (the live runtime's
// misprediction correction, the §5.1 demand path applied to the §5.2
// virtual file).
type UnitInfo struct {
	// Class is the unit's class index within the stream.
	Class int `json:"class"`
	// ClassName is the class's name.
	ClassName string `json:"class_name"`
	// Kind is KindGlobal or KindBody.
	Kind byte `json:"kind"`
	// Body is the body index within the class; -1 for global units.
	Body int `json:"body"`
	// Method is the delivered method; zero for global units.
	Method classfile.Ref `json:"method"`
	// Off is the stream offset of the unit's payload (its 7-byte header
	// immediately precedes it).
	Off int64 `json:"off"`
	// Len is the payload length in bytes, header excluded.
	Len int `json:"len"`
}

// TOC returns the per-unit offset table of the planned stream.
func (w *Writer) TOC() []UnitInfo {
	toc := make([]UnitInfo, 0, len(w.units))
	var off int64
	for _, u := range w.units {
		off += headerSize
		toc = append(toc, UnitInfo{
			Class: u.class, Kind: u.kind, Body: u.body, Method: u.method,
			ClassName: u.cls, Off: off, Len: len(u.data),
		})
		off += int64(len(u.data))
	}
	return toc
}

// MarshalTOC serializes a unit table for transport (the serve command
// publishes it next to the stream).
func MarshalTOC(toc []UnitInfo) ([]byte, error) { return json.Marshal(toc) }

// ParseTOC inverts MarshalTOC.
func ParseTOC(data []byte) ([]UnitInfo, error) {
	var toc []UnitInfo
	if err := json.Unmarshal(data, &toc); err != nil {
		return nil, fmt.Errorf("stream: bad unit table: %w", err)
	}
	return toc, nil
}

// ErrBadStream wraps framing and consistency failures.
var ErrBadStream = errors.New("stream: malformed stream")

// Loader consumes a unit stream and assembles a runnable program,
// verifying incrementally. The zero value is not usable; call NewLoader.
//
// A Loader is safe for concurrent use: the main stream (Load), demand
// fetches (FeedDemand), and readers of the incremental link state
// (Resolver, LoadedClass, UnitsConsumed) may run in separate goroutines.
// Units delivered twice — a demand-fetched unit later re-arriving in the
// main stream, or vice versa — are verified and installed exactly once,
// and fire their events exactly once.
type Loader struct {
	mainClass string
	name      string
	resolver  verify.Resolver

	mu         sync.Mutex
	classes    map[int]*classfile.Class
	layouts    map[int]classfile.Layout
	present    map[int][]bool // per class: which body units have arrived
	ready      map[int]int    // per class: count of arrived bodies
	mainNext   map[int]int    // per class: next body index in the main stream
	fromDemand map[int]bool   // class's global unit arrived via FeedDemand
	mainUnits  int            // units consumed from the main stream
	consumed   int64          // main-stream bytes, headers included
	demanded   int64          // demand-fetched payload bytes
}

// NewLoader builds a loader for a program named name whose entry class
// is mainClass. resolver answers cross-class verification queries and
// may be nil to defer them (the paper's incremental dependence
// analysis); use Resolver() to verify against the classes loaded so far.
func NewLoader(name, mainClass string, resolver verify.Resolver) *Loader {
	return &Loader{
		name:       name,
		mainClass:  mainClass,
		resolver:   resolver,
		classes:    make(map[int]*classfile.Class),
		layouts:    make(map[int]classfile.Layout),
		present:    make(map[int][]bool),
		ready:      make(map[int]int),
		mainNext:   make(map[int]int),
		fromDemand: make(map[int]bool),
	}
}

// Load consumes the whole stream from r, invoking onEvent (if non-nil)
// after each verified unit. Events are delivered outside the loader's
// lock, so the callback may call back into the loader.
func (l *Loader) Load(r io.Reader, onEvent func(Event)) error {
	hdr := make([]byte, headerSize)
	for {
		if _, err := io.ReadFull(r, hdr); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("%w: reading unit header: %v", ErrBadStream, err)
		}
		ci := int(binary.BigEndian.Uint16(hdr[0:]))
		kind := hdr[2]
		n := int(binary.BigEndian.Uint32(hdr[3:]))
		if n > 1<<28 {
			return fmt.Errorf("%w: unit of %d bytes", ErrBadStream, n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return fmt.Errorf("%w: reading %d-byte unit: %v", ErrBadStream, n, err)
		}
		l.mu.Lock()
		l.consumed += headerSize + int64(n)
		ev, err := l.feed(ci, kind, payload)
		l.mainUnits++
		l.mu.Unlock()
		if err != nil {
			return err
		}
		if onEvent != nil {
			for _, e := range ev {
				onEvent(e)
			}
		}
	}
}

// feed processes one main-stream unit and returns the events it
// produced. Callers hold l.mu.
func (l *Loader) feed(ci int, kind byte, payload []byte) ([]Event, error) {
	switch kind {
	case KindGlobal:
		if _, dup := l.classes[ci]; dup {
			if l.fromDemand[ci] {
				// The demand path already delivered this class's global
				// data; the main stream's copy is redundant.
				l.fromDemand[ci] = false
				return nil, nil
			}
			return nil, fmt.Errorf("%w: duplicate global unit for class %d", ErrBadStream, ci)
		}
		return l.installGlobal(ci, payload)

	case KindBody:
		c, ok := l.classes[ci]
		if !ok {
			return nil, fmt.Errorf("%w: body before global data for class %d", ErrBadStream, ci)
		}
		bi := l.mainNext[ci]
		if bi >= len(c.Methods) {
			return nil, fmt.Errorf("%w: class %s: extra body unit", ErrBadStream, c.Name)
		}
		l.mainNext[ci] = bi + 1
		if l.present[ci][bi] {
			// Already demand-fetched out of order; skip the re-delivery.
			return nil, nil
		}
		return l.installBody(ci, bi, payload)

	default:
		return nil, fmt.Errorf("%w: unknown unit kind %d", ErrBadStream, kind)
	}
}

// FeedDemand installs one demand-fetched unit — a misprediction
// correction pulled out of predicted order via a byte-range request
// against the writer's unit table. Body units require the class's global
// unit first (fetch it through FeedDemand too if the main stream has not
// delivered it). Units that already arrived are skipped without error,
// so the demand path may race the main stream freely.
func (l *Loader) FeedDemand(ci int, kind byte, body int, payload []byte) ([]Event, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.demanded += int64(len(payload))
	switch kind {
	case KindGlobal:
		if _, dup := l.classes[ci]; dup {
			return nil, nil
		}
		ev, err := l.installGlobal(ci, payload)
		if err == nil {
			l.fromDemand[ci] = true
		}
		return ev, err
	case KindBody:
		c, ok := l.classes[ci]
		if !ok {
			return nil, fmt.Errorf("stream: demand body for class %d before its global data", ci)
		}
		if body < 0 || body >= len(c.Methods) {
			return nil, fmt.Errorf("stream: demand body %d of class %s out of range [0,%d)", body, c.Name, len(c.Methods))
		}
		if l.present[ci][body] {
			return nil, nil
		}
		return l.installBody(ci, body, payload)
	default:
		return nil, fmt.Errorf("stream: demand unit of unknown kind %d", kind)
	}
}

// installGlobal parses, verifies, and registers a class's global data.
// Callers hold l.mu.
func (l *Loader) installGlobal(ci int, payload []byte) ([]Event, error) {
	c, lay, err := classfile.ParseGlobal(payload)
	if err != nil {
		return nil, fmt.Errorf("%w: class %d: %v", ErrBadStream, ci, err)
	}
	if err := verify.VerifyGlobal(c); err != nil {
		return nil, err
	}
	l.classes[ci] = c
	l.layouts[ci] = lay
	l.present[ci] = make([]bool, len(c.Methods))
	return []Event{{Kind: ClassLinked, Class: c.Name, Bytes: l.consumed}}, nil
}

// installBody verifies and installs one method body. Callers hold l.mu
// and have checked that the body is absent and in range.
func (l *Loader) installBody(ci, bi int, payload []byte) ([]Event, error) {
	c := l.classes[ci]
	m := c.Methods[bi]
	ml := l.layouts[ci].Methods[bi]
	localLen := ml.CodeStart - ml.BodyStart
	codeLen := ml.DelimEnd - classfile.DelimSize - ml.CodeStart
	if len(payload) != localLen+codeLen+classfile.DelimSize {
		return nil, fmt.Errorf("%w: class %s method %d: body is %d bytes, header promised %d",
			ErrBadStream, c.Name, bi, len(payload), localLen+codeLen+classfile.DelimSize)
	}
	if [classfile.DelimSize]byte(payload[localLen+codeLen:]) != classfile.Delim {
		return nil, fmt.Errorf("%w: class %s method %d: bad delimiter", ErrBadStream, c.Name, bi)
	}
	m.LocalData = payload[:localLen:localLen]
	m.Code = payload[localLen : localLen+codeLen : localLen+codeLen]
	res := l.resolver
	if lr, ok := res.(loaderResolver); ok && lr.l == l {
		res = rawResolver{l} // avoid self-deadlock on l.mu
	}
	if err := verify.VerifyMethod(c, m, res); err != nil {
		return nil, err
	}
	l.present[ci][bi] = true
	l.ready[ci]++
	ref := classfile.Ref{Class: c.Name, Name: c.MethodName(m)}
	events := []Event{{Kind: MethodReady, Class: c.Name, Method: ref, Bytes: l.consumed}}
	if l.ready[ci] == len(c.Methods) {
		events = append(events, Event{Kind: ClassComplete, Class: c.Name, Bytes: l.consumed})
	}
	return events, nil
}

// Program assembles the loaded classes. It fails if any method body is
// still missing.
func (l *Loader) Program() (*classfile.Program, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	p := &classfile.Program{Name: l.name, MainClass: l.mainClass}
	for ci := 0; ; ci++ {
		c, ok := l.classes[ci]
		if !ok {
			break
		}
		if l.ready[ci] != len(c.Methods) {
			return nil, fmt.Errorf("stream: class %s has %d of %d method bodies",
				c.Name, l.ready[ci], len(c.Methods))
		}
		p.Classes = append(p.Classes, c)
	}
	if len(p.Classes) != len(l.classes) {
		return nil, fmt.Errorf("stream: class indices are not contiguous")
	}
	if p.Class(l.mainClass) == nil {
		return nil, fmt.Errorf("stream: entry class %q never arrived", l.mainClass)
	}
	return p, nil
}

// Consumed returns the main-stream bytes processed so far.
func (l *Loader) Consumed() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.consumed
}

// DemandBytes returns the payload bytes delivered through FeedDemand.
func (l *Loader) DemandBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.demanded
}

// UnitsConsumed returns the number of units the main stream has
// delivered — the cursor a demand-fetching client compares unit-table
// indices against to detect out-of-predicted-order needs.
func (l *Loader) UnitsConsumed() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mainUnits
}

// LoadedClass returns the named class if its global data has arrived,
// else nil.
func (l *Loader) LoadedClass(name string) *classfile.Class {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.classes {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Resolver returns a verify.Resolver answering from the classes whose
// global data has arrived so far — the incremental link state of the
// paper's §3.1.1 ("interprocedural dependence analysis is performed as
// methods are loaded and verified"). The resolver is safe for concurrent
// use with the loader.
func (l *Loader) Resolver() verify.Resolver { return loaderResolver{l} }

// loaderResolver is the exported, locking view of the link state.
type loaderResolver struct{ l *Loader }

func (r loaderResolver) MethodArity(class, name string) (int, int, bool) {
	r.l.mu.Lock()
	defer r.l.mu.Unlock()
	return rawResolver(r).MethodArity(class, name)
}

func (r loaderResolver) HasField(class, name string) (bool, bool) {
	r.l.mu.Lock()
	defer r.l.mu.Unlock()
	return rawResolver(r).HasField(class, name)
}

// rawResolver answers without locking; used internally while l.mu is
// already held.
type rawResolver struct{ l *Loader }

func (r rawResolver) MethodArity(class, name string) (int, int, bool) {
	for _, c := range r.l.classes {
		if c.Name != class {
			continue
		}
		m := c.MethodByName(name)
		if m == nil {
			return 0, 0, true // class known, method definitively missing
		}
		return m.NArgs, m.NRet, true
	}
	return 0, 0, false // class not yet arrived: defer
}

func (r rawResolver) HasField(class, name string) (bool, bool) {
	for _, c := range r.l.classes {
		if c.Name != class {
			continue
		}
		for _, f := range c.Fields {
			if c.Utf8(f.Name) == name {
				return true, true
			}
		}
		return false, true
	}
	return false, false
}
