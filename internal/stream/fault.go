package stream

import (
	"context"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Fault injects transport failures into an HTTP handler, for tests, the
// demo server, and the chaos harness: a composable set of link
// pathologies a mobile-code client must survive. Each fault is
// deterministic — byte-positional within a request, or counted across
// requests — so a seeded client fetching a fixed stream through a Fault
// observes a reproducible failure schedule:
//
//   - DropEvery kills the connection mid-body (abrupt disconnect).
//   - CorruptEvery flips a seeded bit in the body (silent corruption the
//     stream checksums must catch).
//   - StallAfter hangs the response without dropping it (the failure
//     mode retries alone cannot fix; the client's idle watchdog and the
//     VM's gate deadline must).
//   - TruncateAfter ends the response early but cleanly (truncation at
//     EOF).
//   - GarbageRangeEvery answers a Range request with a bogus 206 (a
//     misbehaving proxy or origin).
//   - FlakyTOC fails the first requests for the unit table with a 503.
//
// Every sleep and stall honours the request context, so a disconnected
// client never pins a server goroutine.
type Fault struct {
	// DropEvery kills the connection after N response-body bytes on each
	// request (0 = never). The partial payload is flushed first, so the
	// client sees real progress followed by a mid-stream disconnect.
	DropEvery int64
	// Latency is added before each body write. The sleep aborts as soon
	// as the request context is canceled.
	Latency time.Duration
	// CorruptEvery XORs a seeded, nonzero mask into every Nth body byte
	// of each request (0 = never). The corrupted positions and masks are
	// functions of (Seed, byte position), so identical requests corrupt
	// identically. Requests for ".toc" paths are exempt: the unit table
	// is JSON with no per-byte checksum, so positional corruption of it
	// is unrecoverable by construction — its failure mode is FlakyTOC.
	CorruptEvery int64
	// StallAfter stalls the response after N body bytes on each request
	// (0 = never): the bytes so far are flushed, then the handler hangs —
	// connection open, no progress — for StallFor, or until the client
	// disconnects when StallFor is 0. The stall engages once per request.
	StallAfter int64
	// StallFor bounds each stall; 0 stalls until the client gives up.
	StallFor time.Duration
	// TruncateAfter ends the response cleanly after N body bytes on each
	// request (0 = never): no connection reset, the body just stops
	// short of the promised length.
	TruncateAfter int64
	// GarbageRangeEvery answers every Nth Range request (counted across
	// all requests) with a garbage 206: a Content-Range that does not
	// match the requested offset and seeded junk bytes (0 = never).
	// Requests for ".toc" paths are exempt and do not advance the
	// counter: the unit table has no per-byte checksum, so a garbaged
	// resume of it would fail the whole run undiagnosably and mask the
	// repair behaviour the schedule is meant to exercise — its failure
	// mode is FlakyTOC.
	GarbageRangeEvery int64
	// FlakyTOC fails the first N requests whose path ends in ".toc" with
	// a 503 (0 = never).
	FlakyTOC int
	// Seed drives the corruption masks and garbage bytes (0 = a fixed
	// default), making every chaos schedule reproducible.
	Seed uint64
	// Counters, when non-nil, receives per-kind injection counts (the
	// serve command exposes them at /metrics). Nil disables counting.
	Counters *FaultStats
}

// FaultStats counts injected faults by kind, for scraping while a chaos
// schedule runs. All fields are updated atomically by the wrapped
// handler and may be read concurrently.
type FaultStats struct {
	drops, corruptedBytes, stalls, truncations, garbageRanges, tocFailures atomic.Int64
}

// FaultCounts is a point-in-time snapshot of FaultStats.
type FaultCounts struct {
	// Drops is connections killed mid-body.
	Drops int64
	// CorruptedBytes is body bytes that had a mask XORed in.
	CorruptedBytes int64
	// Stalls is responses hung mid-body.
	Stalls int64
	// Truncations is responses ended cleanly short of their length.
	Truncations int64
	// GarbageRanges is Range requests answered with a bogus 206.
	GarbageRanges int64
	// TOCFailures is unit-table requests failed with a 503.
	TOCFailures int64
}

// Snapshot reads the counters. Safe on a nil receiver.
func (s *FaultStats) Snapshot() FaultCounts {
	if s == nil {
		return FaultCounts{}
	}
	return FaultCounts{
		Drops:          s.drops.Load(),
		CorruptedBytes: s.corruptedBytes.Load(),
		Stalls:         s.stalls.Load(),
		Truncations:    s.truncations.Load(),
		GarbageRanges:  s.garbageRanges.Load(),
		TOCFailures:    s.tocFailures.Load(),
	}
}

// count bumps one counter when stats collection is enabled.
func count(c *FaultStats, f func(*FaultStats) *atomic.Int64) {
	if c != nil {
		f(c).Add(1)
	}
}

// Enabled reports whether the fault injects anything.
func (f Fault) Enabled() bool {
	return f.DropEvery > 0 || f.Latency > 0 || f.CorruptEvery > 0 ||
		f.StallAfter > 0 || f.TruncateAfter > 0 || f.GarbageRangeEvery > 0 || f.FlakyTOC > 0
}

// seed returns the effective seed.
func (f Fault) seed() uint64 {
	if f.Seed != 0 {
		return f.Seed
	}
	return 0xC5A0C5A0
}

// corruptMask returns the nonzero XOR mask for the body byte at pos —
// a cheap position-keyed hash (splitmix64 finalizer) of the seed.
func (f Fault) corruptMask(pos int64) byte {
	x := f.seed() ^ uint64(pos)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	m := byte(x)
	if m == 0 {
		m = 0x80
	}
	return m
}

// Wrap returns h with the fault applied to every request. A no-op fault
// returns h unchanged.
func (f Fault) Wrap(h http.Handler) http.Handler {
	if !f.Enabled() {
		return h
	}
	var rangeReqs, tocReqs atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		isTOC := strings.HasSuffix(r.URL.Path, ".toc")
		if f.FlakyTOC > 0 && isTOC && tocReqs.Add(1) <= int64(f.FlakyTOC) {
			count(f.Counters, func(s *FaultStats) *atomic.Int64 { return &s.tocFailures })
			http.Error(w, "unit table temporarily unavailable", http.StatusServiceUnavailable)
			return
		}
		// Unit-table requests never enter the garbage-Range schedule:
		// they are exempt AND do not advance the counter, so the same
		// schedule garbages the same /app ranges whether or not the
		// client happened to resume a .toc fetch in between.
		if f.GarbageRangeEvery > 0 && !isTOC && r.Header.Get("Range") != "" &&
			rangeReqs.Add(1)%f.GarbageRangeEvery == 0 {
			count(f.Counters, func(s *FaultStats) *atomic.Int64 { return &s.garbageRanges })
			// A bogus 206: the Content-Range does not match what was
			// asked for, and the body is seeded junk. A correct client
			// rejects the reply and retries.
			w.Header().Set("Content-Range", "bytes 0-15/*")
			w.WriteHeader(http.StatusPartialContent)
			junk := make([]byte, 16)
			for i := range junk {
				junk[i] = f.corruptMask(int64(i))
			}
			w.Write(junk)
			return
		}
		fw := &faultWriter{rw: w, f: f, ctx: r.Context(), dropRemaining: f.DropEvery,
			noCorrupt: strings.HasSuffix(r.URL.Path, ".toc")}
		if f.StallAfter > 0 {
			fw.stallRemaining = f.StallAfter
		} else {
			fw.stallRemaining = -1
		}
		if f.TruncateAfter > 0 {
			fw.truncRemaining = f.TruncateAfter
		} else {
			fw.truncRemaining = -1
		}
		h.ServeHTTP(fw, r)
	})
}

// faultWriter applies the per-request, byte-positional faults: latency,
// stall, truncation, corruption, and the drop budget.
type faultWriter struct {
	rw  http.ResponseWriter
	f   Fault
	ctx context.Context

	pos            int64 // body bytes seen so far this request
	noCorrupt      bool  // .toc request: exempt from CorruptEvery
	dropRemaining  int64 // bytes until the connection is killed (0 budget = disabled handled by f.DropEvery)
	stallRemaining int64 // bytes until the stall; -1 = disabled or already stalled
	truncRemaining int64 // bytes until clean truncation; -1 = disabled
	truncated      bool
}

func (w *faultWriter) Header() http.Header { return w.rw.Header() }

func (w *faultWriter) WriteHeader(code int) { w.rw.WriteHeader(code) }

func (w *faultWriter) Flush() {
	if fl, ok := w.rw.(http.Flusher); ok {
		fl.Flush()
	}
}

// sleepCtx waits for d, aborting early when the request is gone.
func (w *faultWriter) sleepCtx(d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-w.ctx.Done():
		return w.ctx.Err()
	case <-t.C:
		return nil
	}
}

func (w *faultWriter) Write(p []byte) (int, error) {
	if err := w.sleepCtx(w.f.Latency); err != nil {
		// The client is gone; stop the handler instead of writing into
		// a dead connection.
		return 0, err
	}
	if w.truncated {
		return 0, http.ErrHandlerTimeout // any error: just abort the copy loop
	}
	written := 0
	for len(p) > 0 {
		chunk := p
		// Split at the stall point so the pre-stall bytes are delivered.
		stallNow := false
		if w.stallRemaining >= 0 {
			if int64(len(chunk)) >= w.stallRemaining {
				chunk = chunk[:w.stallRemaining]
				stallNow = true
			}
		}
		truncNow := false
		if w.truncRemaining >= 0 && int64(len(chunk)) >= w.truncRemaining {
			chunk = chunk[:w.truncRemaining]
			truncNow = true
		}
		n, err := w.writeChunk(chunk)
		written += n
		w.pos += int64(n)
		if w.stallRemaining >= 0 {
			w.stallRemaining -= int64(n)
		}
		if w.truncRemaining >= 0 {
			w.truncRemaining -= int64(n)
		}
		if err != nil {
			return written, err
		}
		p = p[n:]
		if truncNow {
			count(w.f.Counters, func(s *FaultStats) *atomic.Int64 { return &s.truncations })
			w.Flush()
			w.truncated = true
			return written, http.ErrHandlerTimeout
		}
		if stallNow {
			count(w.f.Counters, func(s *FaultStats) *atomic.Int64 { return &s.stalls })
			w.stallRemaining = -1 // one stall per request
			w.Flush()
			d := w.f.StallFor
			if d <= 0 {
				// Hang until the client disconnects: the pathological
				// link that never recovers and never errors.
				<-w.ctx.Done()
				return written, w.ctx.Err()
			}
			if err := w.sleepCtx(d); err != nil {
				return written, err
			}
		}
	}
	return written, nil
}

// writeChunk applies corruption and the drop budget to one chunk that
// contains no stall or truncation point.
func (w *faultWriter) writeChunk(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if w.f.CorruptEvery > 0 && !w.noCorrupt {
		// Corrupt positions are 1-based multiples of CorruptEvery within
		// the request body; copy so the caller's buffer stays intact.
		// The copy is pooled: the bytes are consumed by rw.Write before
		// this function returns, so the scratch can be recycled.
		var q []byte
		if len(p) <= copyBufSize {
			bp := copyBufPool.Get().(*[]byte)
			defer copyBufPool.Put(bp)
			q = (*bp)[:len(p)]
			copy(q, p)
		} else {
			q = append([]byte(nil), p...)
		}
		first := w.f.CorruptEvery - (w.pos % w.f.CorruptEvery) - 1
		for i := first; i < int64(len(q)); i += w.f.CorruptEvery {
			q[i] ^= w.f.corruptMask(w.pos + i)
			count(w.f.Counters, func(s *FaultStats) *atomic.Int64 { return &s.corruptedBytes })
		}
		p = q
	}
	if w.f.DropEvery <= 0 {
		return w.rw.Write(p)
	}
	if w.dropRemaining <= 0 {
		w.abort()
	}
	if int64(len(p)) > w.dropRemaining {
		p = p[:w.dropRemaining]
	}
	n, err := w.rw.Write(p)
	w.dropRemaining -= int64(n)
	if err != nil {
		return n, err
	}
	if w.dropRemaining <= 0 {
		// Deliver what was written, then kill the connection.
		w.Flush()
		count(w.f.Counters, func(s *FaultStats) *atomic.Int64 { return &s.drops })
		w.abort()
	}
	return n, nil
}

// abort drops the connection without a graceful close; net/http
// recognizes ErrAbortHandler and does not log it.
func (w *faultWriter) abort() { panic(http.ErrAbortHandler) }
