package stream

import (
	"net/http"
	"time"
)

// Fault injects transport failures into an HTTP handler, for tests and
// the demo server: a fixed latency before every write, and a hard
// connection drop after every N payload bytes. Drops are deterministic
// in byte position — a seeded client fetching a fixed stream through a
// Fault observes a reproducible failure schedule — and each request gets
// a fresh byte budget, so a resuming client always makes progress as
// long as DropEvery > 0.
type Fault struct {
	// DropEvery kills the connection after N response-body bytes on each
	// request (0 = never). The partial payload is flushed first, so the
	// client sees real progress followed by a mid-stream disconnect.
	DropEvery int64
	// Latency is added before each body write.
	Latency time.Duration
}

// Enabled reports whether the fault injects anything.
func (f Fault) Enabled() bool { return f.DropEvery > 0 || f.Latency > 0 }

// Wrap returns h with the fault applied to every request. A no-op fault
// returns h unchanged.
func (f Fault) Wrap(h http.Handler) http.Handler {
	if !f.Enabled() {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.ServeHTTP(&faultWriter{rw: w, f: f, remaining: f.DropEvery}, r)
	})
}

// faultWriter counts payload bytes and aborts the connection when the
// drop budget is exhausted.
type faultWriter struct {
	rw        http.ResponseWriter
	f         Fault
	remaining int64
}

func (w *faultWriter) Header() http.Header { return w.rw.Header() }

func (w *faultWriter) WriteHeader(code int) { w.rw.WriteHeader(code) }

func (w *faultWriter) Flush() {
	if fl, ok := w.rw.(http.Flusher); ok {
		fl.Flush()
	}
}

func (w *faultWriter) Write(p []byte) (int, error) {
	if w.f.Latency > 0 {
		time.Sleep(w.f.Latency)
	}
	if w.f.DropEvery <= 0 {
		return w.rw.Write(p)
	}
	if w.remaining <= 0 {
		w.abort()
	}
	if int64(len(p)) > w.remaining {
		p = p[:w.remaining]
	}
	n, err := w.rw.Write(p)
	w.remaining -= int64(n)
	if err != nil {
		return n, err
	}
	if w.remaining <= 0 {
		// Deliver what was written, then kill the connection.
		w.Flush()
		w.abort()
	}
	return n, nil
}

// abort drops the connection without a graceful close; net/http
// recognizes ErrAbortHandler and does not log it.
func (w *faultWriter) abort() { panic(http.ErrAbortHandler) }
