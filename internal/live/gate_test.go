package live

import (
	"errors"
	"sync"
	"testing"
	"time"

	"nonstrict/internal/classfile"
)

// fakeClock is a hand-cranked time source for gate-deadline tests. Its
// wall reading (Now) and its monotonic axis (which drives AfterFunc
// timers) are deliberately separate: Jump steps only the wall clock —
// the skew a suspended host or an NTP step produces — while Advance
// moves both, firing due timers. A correct gate budget follows only
// the monotonic axis.
type fakeClock struct {
	mu     sync.Mutex
	wall   time.Time
	mono   time.Duration
	timers []*fakeTimer
	armed  int
}

type fakeTimer struct {
	c       *fakeClock
	fireAt  time.Duration
	f       func()
	stopped bool
}

func newFakeClock() *fakeClock {
	return &fakeClock{wall: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wall
}

func (c *fakeClock) AfterFunc(d time.Duration, f func()) gateTimer {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.armed++
	t := &fakeTimer{c: c, fireAt: c.mono + d, f: f}
	c.timers = append(c.timers, t)
	return t
}

func (t *fakeTimer) Stop() bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	was := !t.stopped
	t.stopped = true
	return was
}

// Jump steps the wall clock without advancing the monotonic axis.
func (c *fakeClock) Jump(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wall = c.wall.Add(d)
}

// Advance moves both clocks forward and fires timers that come due.
func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.mono += d
	c.wall = c.wall.Add(d)
	var due []*fakeTimer
	keep := c.timers[:0]
	for _, t := range c.timers {
		if !t.stopped && t.fireAt <= c.mono {
			due = append(due, t)
		} else {
			keep = append(keep, t)
		}
	}
	c.timers = keep
	c.mu.Unlock()
	for _, t := range due {
		t.f() // outside c.mu: callbacks take the runtime's lock
	}
}

func (c *fakeClock) armedCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.armed
}

func (c *fakeClock) activeTimers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, t := range c.timers {
		if !t.stopped {
			n++
		}
	}
	return n
}

// gateRuntime builds the minimal runtime a gate wait needs, on a fake
// clock, with no stream behind it (so nothing ever becomes ready
// except by the test's hand).
func gateRuntime(fc *fakeClock, timeout time.Duration) *runtime {
	rt := &runtime{
		opts:        Options{GateTimeout: timeout},
		classReady:  map[string]bool{},
		methodReady: map[classfile.Ref]bool{},
		demanded:    map[classfile.Ref]bool{},
		classDem:    map[string]bool{},
		methodsAt:   map[classfile.Ref]time.Duration{},
		classesAt:   map[string]time.Duration{},
		now:         fc.Now,
		afterFunc:   fc.AfterFunc,
	}
	rt.start = fc.Now()
	rt.cond = sync.NewCond(&rt.mu)
	return rt
}

// settle gives the parked goroutine a moment to process a wakeup, then
// reports whether the wait has returned.
func settle(errc <-chan error) (error, bool) {
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-errc:
		return err, true
	default:
		return nil, false
	}
}

// TestGateDeadlineImmuneToWallClockSteps is the S2 regression. The
// gate budget must be a single monotonic timer armed once at entry:
// re-deriving "time remaining" from wall-clock subtraction on each
// spurious wakeup lets a host suspend or clock step fire
// ErrGateTimeout early (wall jumped forward) or never (wall jumped
// back). Here the wall clock jumps an hour in both directions
// mid-wait, spurious broadcasts storm the waiter, and the deadline
// still fires exactly when the monotonic budget elapses — on the one
// and only timer armed.
func TestGateDeadlineImmuneToWallClockSteps(t *testing.T) {
	fc := newFakeClock()
	rt := gateRuntime(fc, 30*time.Second)
	ref := classfile.Ref{Class: "Main", Name: "main"}

	errc := make(chan error, 1)
	go func() { errc <- rt.AwaitMethod(ref) }()
	for i := 0; fc.armedCount() == 0; i++ {
		if i > 500 {
			t.Fatal("gate never armed its deadline timer")
		}
		time.Sleep(time.Millisecond)
	}

	// 10s of real waiting, then the wall leaps an hour ahead. A budget
	// recomputed from the wall clock would now be overdrawn and fire
	// ~20s early.
	fc.Advance(10 * time.Second)
	fc.Jump(time.Hour)
	rt.cond.Broadcast()
	if err, done := settle(errc); done {
		t.Fatalf("deadline fired early after a forward wall step: %v", err)
	}

	// The wall leaps two hours back (suspend/resume skew). A recomputed
	// budget would now see hours of headroom and never fire.
	fc.Advance(10 * time.Second)
	fc.Jump(-2 * time.Hour)
	rt.cond.Broadcast()
	if err, done := settle(errc); done {
		t.Fatalf("deadline fired during backward wall step: %v", err)
	}

	// Monotonic budget elapses: 10+10+10 = 30s.
	fc.Advance(10 * time.Second)
	select {
	case err := <-errc:
		if !errors.Is(err, ErrGateTimeout) {
			t.Fatalf("err = %v, want ErrGateTimeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadline never fired after the monotonic budget elapsed")
	}

	if got := fc.armedCount(); got != 1 {
		t.Fatalf("gate armed %d timers, want exactly 1 (no spurious-wakeup re-arming)", got)
	}
}

// TestGateReleaseStopsTimerAndAttributesWait: a wait released by the
// method becoming ready must return nil, release its deadline timer,
// and record a Wait whose transfer/repair/gate parts sum to the wait.
func TestGateReleaseStopsTimerAndAttributesWait(t *testing.T) {
	fc := newFakeClock()
	rt := gateRuntime(fc, 30*time.Second)
	ref := classfile.Ref{Class: "Main", Name: "main"}

	errc := make(chan error, 1)
	go func() { errc <- rt.AwaitMethod(ref) }()
	for i := 0; fc.armedCount() == 0; i++ {
		if i > 500 {
			t.Fatal("gate never armed its deadline timer")
		}
		time.Sleep(time.Millisecond)
	}

	fc.Advance(10 * time.Second)
	rt.mu.Lock()
	rt.methodReady[ref] = true
	rt.classReady[ref.Class] = true
	rt.methodsAt[ref] = rt.sinceStart()
	rt.classesAt[ref.Class] = rt.sinceStart()
	rt.mu.Unlock()
	rt.cond.Broadcast()

	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("AwaitMethod: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wait never released after the method became ready")
	}

	if n := fc.activeTimers(); n != 0 {
		t.Fatalf("%d deadline timers still armed after release, want 0", n)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(rt.waits) != 1 {
		t.Fatalf("recorded %d waits, want 1", len(rt.waits))
	}
	w := rt.waits[0]
	if w.Wait != 10*time.Second {
		t.Fatalf("Wait = %v, want 10s", w.Wait)
	}
	if w.Transfer+w.Repair+w.Gate != w.Wait {
		t.Fatalf("decomposition %v+%v+%v does not sum to Wait %v", w.Transfer, w.Repair, w.Gate, w.Wait)
	}
	if w.Transfer != 10*time.Second || w.Repair != 0 || w.Gate != 0 {
		t.Fatalf("attribution = transfer %v, repair %v, gate %v; want all 10s in transfer", w.Transfer, w.Repair, w.Gate)
	}
	if rt.stall != w.Wait {
		t.Fatalf("stall = %v, want %v", rt.stall, w.Wait)
	}
}

// TestGateDisabledDeadlineArmsNothing: a negative GateTimeout disables
// the deadline entirely — no timer, no timeout, release only by
// readiness.
func TestGateDisabledDeadlineArmsNothing(t *testing.T) {
	fc := newFakeClock()
	rt := gateRuntime(fc, -1)
	ref := classfile.Ref{Class: "Main", Name: "main"}

	errc := make(chan error, 1)
	go func() { errc <- rt.AwaitMethod(ref) }()

	fc.Advance(time.Hour)
	rt.cond.Broadcast()
	if err, done := settle(errc); done {
		t.Fatalf("disabled deadline still fired: %v", err)
	}
	if got := fc.armedCount(); got != 0 {
		t.Fatalf("disabled deadline armed %d timers, want 0", got)
	}

	rt.mu.Lock()
	rt.methodReady[ref] = true
	rt.classReady[ref.Class] = true
	rt.mu.Unlock()
	rt.cond.Broadcast()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("AwaitMethod: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wait never released")
	}
}
