package live

import (
	"context"
	"testing"
	"time"

	"nonstrict/internal/stream"
	"nonstrict/internal/vm"
)

// TestGateSoakSeeded is the availability gate's randomized soak — the
// internal/live arm of the internal/check stress discipline: seeded
// fault cocktails (disconnects, corruption, latency) against overlapped
// runs, asserting the gate invariants the checker pins. Every gate wait
// must eventually unblock (a context deadline converts a lost wakeup
// into a failure instead of a hung suite), each recorded wait's
// Transfer/Repair/Gate decomposition must sum exactly, and the run must
// be bit-identical to the strict reference. Failures name the seed.
func TestGateSoakSeeded(t *testing.T) {
	p := plan(t, "Hanoi")
	want := reference(t, p)
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		fault := stream.Fault{
			Seed:         uint64(seed),
			DropEvery:    400 + 300*seed,
			CorruptEvery: 900 + 500*seed,
		}
		if seed%2 == 0 {
			fault.Latency = time.Duration(seed) * 100 * time.Microsecond
		}
		srv := serve(t, p, fault)
		// The watchdog: a lost wakeup at the gate surfaces as this
		// deadline, with the seed, not as a hung test binary.
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		m, st, err := Run(ctx, Options{
			URL:       srv.URL + "/app",
			TOCURL:    srv.URL + "/app.toc",
			Name:      p.app.Name,
			MainClass: p.rp.MainClass,
			Client:    fastClient(),
			Run:       vm.Options{Args: p.app.TestArgs, MaxSteps: 5e8},
		})
		cancel()
		if err != nil {
			t.Fatalf("seed %d: overlapped run failed (a timeout here is a lost wakeup at the gate): %v", seed, err)
		}
		checkRun(t, p, m, want)
		for _, w := range st.Waits {
			if w.Transfer+w.Repair+w.Gate != w.Wait {
				t.Fatalf("seed %d: wait for %v decomposes to %v+%v+%v != %v",
					seed, w.Method, w.Transfer, w.Repair, w.Gate, w.Wait)
			}
		}
		if st.Integrity.Outstanding != 0 {
			t.Fatalf("seed %d: run succeeded with %d units still quarantined (stale quarantine)",
				seed, st.Integrity.Outstanding)
		}
		if st.Integrity.CorruptUnits > 0 && st.Integrity.Repaired == 0 && st.Integrity.Quarantined == 0 {
			t.Fatalf("seed %d: %d corrupt units neither repaired nor quarantined",
				seed, st.Integrity.CorruptUnits)
		}
	}
}
