package live

import (
	"math"
	"testing"
	"time"

	"nonstrict/internal/classfile"
)

// TestOverlapIsAlwaysAFraction is the S1 regression: Overlap must be a
// fraction in [0, 1] for every Stats a run can produce. Before the
// fix, a run whose measured stall exceeded its execution window (clock
// jitter on a fast fault-free run) reported a negative overlap, and a
// failed run with ExecDone == 0 risked NaN/Inf in the division.
func TestOverlapIsAlwaysAFraction(t *testing.T) {
	cases := []struct {
		name string
		s    Stats
		want float64
	}{
		{"zero stats", Stats{}, 0},
		{"stall exceeds window", Stats{ExecDone: 5 * time.Millisecond, StallTime: 10 * time.Millisecond}, 0},
		{"negative window", Stats{ExecDone: -time.Millisecond, StallTime: time.Millisecond}, 0},
		{"negative stall jitter", Stats{ExecDone: 10 * time.Millisecond, StallTime: -time.Millisecond}, 1},
		{"half stalled", Stats{ExecDone: 10 * time.Millisecond, StallTime: 5 * time.Millisecond}, 0.5},
		{"no stall", Stats{ExecDone: 10 * time.Millisecond}, 1},
	}
	for _, c := range cases {
		got := c.s.Overlap()
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%s: Overlap() = %v, want a finite fraction", c.name, got)
			continue
		}
		if got < 0 || got > 1 {
			t.Errorf("%s: Overlap() = %v, want within [0, 1]", c.name, got)
			continue
		}
		if got != c.want {
			t.Errorf("%s: Overlap() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestAttributeWait(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		name                    string
		began, woke, ready      time.Duration
		repairs                 []span
		transfer, repair, gated time.Duration
	}{
		{"ready before wait began", ms(10), ms(12), ms(5), nil, 0, 0, ms(2)},
		{"ready mid-wait", ms(10), ms(30), ms(25), nil, ms(15), 0, ms(5)},
		{"ready after woke clamps", ms(10), ms(30), ms(40), nil, ms(20), 0, 0},
		{"repair consumes arrival", ms(10), ms(30), ms(26), []span{{ms(12), ms(20)}}, ms(8), ms(8), ms(4)},
		{"repair clipped to window", ms(10), ms(30), ms(20), []span{{0, ms(15)}, {ms(18), ms(40)}}, ms(3), ms(7), ms(10)},
		{"zero-length wait", ms(10), ms(10), ms(4), nil, 0, 0, 0},
	}
	for _, c := range cases {
		tr, rp, gt := attributeWait(c.began, c.woke, c.ready, c.repairs)
		if tr != c.transfer || rp != c.repair || gt != c.gated {
			t.Errorf("%s: attributeWait = (%v, %v, %v), want (%v, %v, %v)",
				c.name, tr, rp, gt, c.transfer, c.repair, c.gated)
		}
		if sum := tr + rp + gt; sum != c.woke-c.began {
			t.Errorf("%s: components sum to %v, want the wait %v", c.name, sum, c.woke-c.began)
		}
	}
}

// TestAttributionsSumToLatency pins the report's headline invariant:
// for every first invocation, Execute + Transfer + Repair + Gate ==
// Latency exactly — the decomposition never invents or loses time.
func TestAttributionsSumToLatency(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	ref := func(n string) classfile.Ref { return classfile.Ref{Class: "Main", Name: n} }
	s := &Stats{Waits: []Wait{
		{Method: ref("main"), At: ms(2), Wait: ms(40), Transfer: ms(30), Repair: ms(6), Gate: ms(4)},
		{Method: ref("a"), At: ms(60), Wait: 0},
		{Method: ref("b"), At: ms(75), Wait: ms(10), Transfer: ms(3), Repair: 0, Gate: ms(7), Demand: true},
		{Method: ref("c"), At: ms(300), Wait: ms(1), Transfer: ms(1)},
	}}
	attrs := s.Attributions()
	if len(attrs) != len(s.Waits) {
		t.Fatalf("got %d attributions, want %d", len(attrs), len(s.Waits))
	}
	for i, a := range attrs {
		w := s.Waits[i]
		if a.Method != w.Method || a.Demand != w.Demand {
			t.Errorf("attribution %d: identity %v/%v does not match wait %v/%v", i, a.Method, a.Demand, w.Method, w.Demand)
		}
		if a.Latency != w.At+w.Wait {
			t.Errorf("%v: Latency = %v, want %v", a.Method, a.Latency, w.At+w.Wait)
		}
		if sum := a.Execute + a.Transfer + a.Repair + a.Gate; sum != a.Latency {
			t.Errorf("%v: components sum to %v, want Latency %v", a.Method, sum, a.Latency)
		}
	}
	// Spot-check the cumulative execute: method b ran after 62ms of
	// prior execution was interleaved with 40ms of waiting.
	if got, want := attrs[2].Execute, ms(75)-ms(40); got != want {
		t.Errorf("b: Execute = %v, want %v", got, want)
	}
	if got, want := attrs[2].Transfer, ms(33); got != want {
		t.Errorf("b: cumulative Transfer = %v, want %v", got, want)
	}
}
