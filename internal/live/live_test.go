package live

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"nonstrict/internal/apps"
	"nonstrict/internal/cfg"
	"nonstrict/internal/classfile"
	"nonstrict/internal/jir"
	"nonstrict/internal/reorder"
	"nonstrict/internal/restructure"
	"nonstrict/internal/stream"
	"nonstrict/internal/vm"
)

// planned is one benchmark prepared for serving: the restructured
// program, its stream bytes, and its unit table.
type planned struct {
	app  *apps.App
	rp   *classfile.Program
	data []byte
	toc  []byte
}

func plan(t *testing.T, name string) planned {
	t.Helper()
	app, err := apps.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := jir.Compile(app.IR)
	if err != nil {
		t.Fatal(err)
	}
	ix := prog.IndexMethods()
	graphs, err := cfg.BuildAll(ix)
	if err != nil {
		t.Fatal(err)
	}
	ord, err := reorder.Static(ix, graphs)
	if err != nil {
		t.Fatal(err)
	}
	rp := restructure.Apply(prog, ix, ord)
	w, err := stream.NewWriter(rp, ix, ord)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	toc, err := stream.MarshalTOC(w.TOC())
	if err != nil {
		t.Fatal(err)
	}
	return planned{app: app, rp: rp, data: buf.Bytes(), toc: toc}
}

// serve publishes a planned stream and unit table with Range support
// and optional fault injection.
func serve(t *testing.T, p planned, f stream.Fault) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/app", func(w http.ResponseWriter, r *http.Request) {
		http.ServeContent(w, r, "app.bin", time.Time{}, bytes.NewReader(p.data))
	})
	mux.HandleFunc("/app.toc", func(w http.ResponseWriter, r *http.Request) {
		http.ServeContent(w, r, "app.toc.json", time.Time{}, bytes.NewReader(p.toc))
	})
	srv := httptest.NewServer(f.Wrap(mux))
	t.Cleanup(srv.Close)
	return srv
}

// fastClient retries without real sleeps.
func fastClient() *stream.FetchClient {
	return &stream.FetchClient{
		RequestTimeout: 5 * time.Second,
		BackoffBase:    time.Microsecond,
		BackoffMax:     time.Millisecond,
	}
}

// reference runs the program strictly (fully linked, nothing streamed)
// and returns its instruction count.
func reference(t *testing.T, p planned) int64 {
	t.Helper()
	ln, err := vm.Link(p.rp)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ln.Run(vm.Options{Args: p.app.TestArgs, MaxSteps: 5e8})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.app.Check(m, false); err != nil {
		t.Fatal(err)
	}
	return m.Steps()
}

// checkRun asserts an overlapped run produced exactly the strict run's
// behaviour: same output (self-check) and same dynamic instruction
// count.
func checkRun(t *testing.T, p planned, m *vm.Machine, want int64) {
	t.Helper()
	if err := p.app.Check(m, false); err != nil {
		t.Errorf("self-check after overlapped run: %v", err)
	}
	if m.Steps() != want {
		t.Errorf("overlapped run executed %d instructions, strict run %d", m.Steps(), want)
	}
}

// TestLiveOverlappedRun is the headline property, and the -race test of
// the loader/VM handoff: the interpreter executes while the loader
// goroutine is still feeding classes in, and the result is identical to
// a fully-strict run.
func TestLiveOverlappedRun(t *testing.T) {
	for _, name := range []string{"Hanoi", "TestDes"} {
		t.Run(name, func(t *testing.T) {
			p := plan(t, name)
			want := reference(t, p)
			srv := serve(t, p, stream.Fault{})
			m, st, err := Run(context.Background(), Options{
				URL:       srv.URL + "/app",
				TOCURL:    srv.URL + "/app.toc",
				Name:      p.app.Name,
				MainClass: p.rp.MainClass,
				Client:    fastClient(),
				Run:       vm.Options{Args: p.app.TestArgs, MaxSteps: 5e8},
			})
			if err != nil {
				t.Fatal(err)
			}
			checkRun(t, p, m, want)
			if len(st.Waits) == 0 {
				t.Error("no first-invocation latencies recorded")
			}
			if st.Waits[0].Method.Name != "main" {
				t.Errorf("first gate crossing was %v, want main", st.Waits[0].Method)
			}
			if st.StreamBytes+st.DemandBytes < int64(len(p.data)) {
				t.Errorf("only %d stream + %d demand bytes for a %d-byte program",
					st.StreamBytes, st.DemandBytes, len(p.data))
			}
			if st.TransferDone <= 0 || st.ExecDone <= 0 {
				t.Errorf("missing timeline: exec %v, transfer %v", st.ExecDone, st.TransferDone)
			}
		})
	}
}

// TestLiveNoTOC exercises the degraded mode: without a unit table the
// runtime cannot demand-fetch, so every gate wait rides the main stream.
func TestLiveNoTOC(t *testing.T) {
	p := plan(t, "Hanoi")
	want := reference(t, p)
	srv := serve(t, p, stream.Fault{})
	m, st, err := Run(context.Background(), Options{
		URL:       srv.URL + "/app",
		Name:      p.app.Name,
		MainClass: p.rp.MainClass,
		Client:    fastClient(),
		Run:       vm.Options{Args: p.app.TestArgs, MaxSteps: 5e8},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkRun(t, p, m, want)
	if st.DemandFetches != 0 {
		t.Errorf("%d demand fetches without a unit table", st.DemandFetches)
	}
}

// TestLiveUnderFaults drops the connection every few hundred bytes; the
// run must still complete, resuming with Range requests.
func TestLiveUnderFaults(t *testing.T) {
	p := plan(t, "Hanoi")
	want := reference(t, p)
	srv := serve(t, p, stream.Fault{DropEvery: 700})
	client := fastClient()
	m, st, err := Run(context.Background(), Options{
		URL:       srv.URL + "/app",
		TOCURL:    srv.URL + "/app.toc",
		Name:      p.app.Name,
		MainClass: p.rp.MainClass,
		Client:    client,
		Run:       vm.Options{Args: p.app.TestArgs, MaxSteps: 5e8},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkRun(t, p, m, want)
	if st.Transfer.Resumes == 0 {
		t.Error("stream fit in one connection; fault injection did not engage")
	}
}

// TestLiveDemandFetch makes the main stream crawl while demand fetches
// stay fast, so execution outruns the predicted order and must pull
// methods by byte range.
func TestLiveDemandFetch(t *testing.T) {
	p := plan(t, "Hanoi")
	want := reference(t, p)
	mux := http.NewServeMux()
	mux.HandleFunc("/app", func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Range") != "" {
			// Demand fetches (and resumes) at full speed.
			http.ServeContent(w, r, "app.bin", time.Time{}, bytes.NewReader(p.data))
			return
		}
		// The initial full-stream request trickles out.
		fl, _ := w.(http.Flusher)
		for off := 0; off < len(p.data); off += 64 {
			end := off + 64
			if end > len(p.data) {
				end = len(p.data)
			}
			if _, err := w.Write(p.data[off:end]); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
			time.Sleep(500 * time.Microsecond)
		}
	})
	mux.HandleFunc("/app.toc", func(w http.ResponseWriter, r *http.Request) {
		http.ServeContent(w, r, "app.toc.json", time.Time{}, bytes.NewReader(p.toc))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	m, st, err := Run(context.Background(), Options{
		URL:       srv.URL + "/app",
		TOCURL:    srv.URL + "/app.toc",
		Name:      p.app.Name,
		MainClass: p.rp.MainClass,
		Client:    fastClient(),
		Run:       vm.Options{Args: p.app.TestArgs, MaxSteps: 5e8},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkRun(t, p, m, want)
	if st.DemandFetches == 0 {
		t.Error("execution outran a trickling stream without demand-fetching")
	}
	if st.Mispredicts == 0 {
		t.Error("demand fetches fired but no mispredicts counted")
	}
	var demanded int
	for _, wt := range st.Waits {
		if wt.Demand {
			demanded++
		}
	}
	if demanded == 0 {
		t.Error("no first invocation marked as demand-satisfied")
	}
}

// TestLiveConcurrentRuns hammers the shared FetchClient and independent
// runtimes from several goroutines — with -race this doubles as a check
// that nothing leaks across runs.
func TestLiveConcurrentRuns(t *testing.T) {
	p := plan(t, "Hanoi")
	want := reference(t, p)
	srv := serve(t, p, stream.Fault{DropEvery: 1500})
	client := fastClient()
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, _, err := Run(context.Background(), Options{
				URL:       srv.URL + "/app",
				TOCURL:    srv.URL + "/app.toc",
				Name:      p.app.Name,
				MainClass: p.rp.MainClass,
				Client:    client,
				Run:       vm.Options{Args: p.app.TestArgs, MaxSteps: 5e8},
			})
			if err == nil && m.Steps() != want {
				err = p.app.Check(m, false)
			}
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}
