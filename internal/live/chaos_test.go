package live

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nonstrict/internal/stream"
	"nonstrict/internal/vm"
)

// parseTOC decodes a planned stream's unit table for test arithmetic.
func parseTOC(t *testing.T, p planned) []stream.UnitInfo {
	t.Helper()
	toc, err := stream.ParseTOC(p.toc)
	if err != nil {
		t.Fatal(err)
	}
	return toc
}

// corruptTarget picks a CorruptEvery period that deterministically flips
// exactly one payload byte of the main stream: the period points at the
// middle of a unit in the stream's second half (so the second hit falls
// past EOF), and every unit is shorter than the period (so repair and
// demand range replies — whose corruption positions are relative to
// their own bodies — always come back clean).
func corruptTarget(t *testing.T, p planned) int64 {
	t.Helper()
	toc := parseTOC(t, p)
	maxLen := 0
	for _, u := range toc {
		if u.Len > maxLen {
			maxLen = u.Len
		}
	}
	half := int64(len(p.data)) / 2
	for _, u := range toc {
		period := u.Off + int64(u.Len)/2 + 1
		if u.Off >= half && period > int64(maxLen) && u.Len >= 2 {
			return period
		}
	}
	t.Fatal("no unit in the stream's second half to target")
	return 0
}

// chaosRun executes one overlapped run under a fault schedule and
// asserts the headline chaos property: the program either produces
// output identical to the fault-free run, or fails with a diagnosable
// error — never a hang (bounded by the gate deadline) and never a wrong
// result.
func chaosRun(t *testing.T, p planned, want int64, f stream.Fault, client *stream.FetchClient) (*Stats, error) {
	t.Helper()
	srv := serve(t, p, f)
	done := make(chan struct{})
	var (
		m   *vm.Machine
		st  *Stats
		err error
	)
	go func() {
		defer close(done)
		m, st, err = Run(context.Background(), Options{
			URL:         srv.URL + "/app",
			TOCURL:      srv.URL + "/app.toc",
			Name:        p.app.Name,
			MainClass:   p.rp.MainClass,
			Client:      client,
			GateTimeout: 10 * time.Second,
			Run:         vm.Options{Args: p.app.TestArgs, MaxSteps: 5e8},
		})
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("chaos run hung past every deadline")
	}
	if err != nil {
		return st, err
	}
	checkRun(t, p, m, want)
	return st, nil
}

// TestChaosSchedules composes seeded fault schedules — corruption,
// drops, stalls (bounded and unbounded), flaky unit tables, garbage
// Range replies — and requires every run to end with correct output or
// a clean error. Each schedule is deterministic under its seed, so a
// failure here reproduces.
func TestChaosSchedules(t *testing.T) {
	p := plan(t, "Hanoi")
	want := reference(t, p)
	period := corruptTarget(t, p)

	// watchdogClient recovers from unbounded stalls: the idle watchdog
	// cancels a silent connection and resumes by Range.
	watchdogClient := func() *stream.FetchClient {
		c := fastClient()
		c.RequestTimeout = 150 * time.Millisecond
		return c
	}

	schedules := []struct {
		name   string
		fault  stream.Fault
		client *stream.FetchClient
	}{
		{"drops", stream.Fault{DropEvery: 700, Seed: 11}, fastClient()},
		{"corruption", stream.Fault{CorruptEvery: period, Seed: 12}, fastClient()},
		{"corruption-drops", stream.Fault{CorruptEvery: period, DropEvery: 2500, Seed: 13}, fastClient()},
		{"bounded-stalls", stream.Fault{StallAfter: 900, StallFor: 30 * time.Millisecond, DropEvery: 2200, Seed: 14}, fastClient()},
		{"stall-forever", stream.Fault{StallAfter: 1500, Seed: 15}, watchdogClient()},
		{"flaky-toc-garbage-range", stream.Fault{FlakyTOC: 2, GarbageRangeEvery: 3, DropEvery: 1200, Seed: 16}, fastClient()},
		{"everything", stream.Fault{
			CorruptEvery: period, DropEvery: 2500,
			StallAfter: 1700, StallFor: 25 * time.Millisecond,
			FlakyTOC: 1, GarbageRangeEvery: 4, Seed: 17,
		}, fastClient()},
	}
	for _, sc := range schedules {
		t.Run(sc.name, func(t *testing.T) {
			st, err := chaosRun(t, p, want, sc.fault, sc.client)
			if err != nil {
				// A clean, diagnosable failure is acceptable under chaos;
				// silence or garbage output is not.
				t.Logf("run failed cleanly: %v", err)
				if st == nil {
					t.Error("failed run returned no stats")
				}
				return
			}
			if sc.fault.DropEvery > 0 && st.Transfer.Resumes == 0 && st.Degraded == "" {
				t.Error("drop fault never engaged")
			}
		})
	}
}

// TestChaosCorruptionCounters pins the accounting on the deterministic
// single-corruption schedule: the run must complete with identical
// output, and the corruption/re-fetch counters must show the repair
// round trip.
func TestChaosCorruptionCounters(t *testing.T) {
	p := plan(t, "Hanoi")
	want := reference(t, p)
	period := corruptTarget(t, p)
	st, err := chaosRun(t, p, want, stream.Fault{CorruptEvery: period, Seed: 21}, fastClient())
	if err != nil {
		t.Fatal(err)
	}
	if st.Integrity.CorruptUnits == 0 {
		t.Error("corruption schedule ran but no corrupt units counted")
	}
	if st.Refetches == 0 {
		t.Error("corrupt unit healed without a counted re-fetch")
	}
	if st.Integrity.Repaired == 0 {
		t.Error("no unit recorded as repaired")
	}
	if st.Integrity.Outstanding != 0 {
		t.Errorf("%d units still quarantined after a successful run", st.Integrity.Outstanding)
	}
}

// trickleServer streams the prefix covering the first two units fast,
// then delivers one byte every few milliseconds without ever failing —
// the pathological transfer that defeats retry logic: every reconnect
// makes progress, so no error is ever terminal, and before the gate
// deadline existed the VM parked forever.
func trickleServer(t *testing.T, p planned) *httptest.Server {
	t.Helper()
	toc := parseTOC(t, p)
	if len(toc) < 3 {
		t.Fatal("need at least 3 units")
	}
	cut := int(toc[2].Off) - stream.UnitHeaderSize // start of the third unit's header
	mux := http.NewServeMux()
	mux.HandleFunc("/app", func(w http.ResponseWriter, r *http.Request) {
		// Always a 200 from byte 0; the fetch client discards up to its
		// resume offset, which this server re-trickles anyway.
		fl, _ := w.(http.Flusher)
		if _, err := w.Write(p.data[:cut]); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
		for i := cut; i < len(p.data); i++ {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(20 * time.Millisecond):
			}
			if _, err := w.Write(p.data[i : i+1]); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestGateDeadlineOnTricklingStream is the regression test for the
// forever-parked gate: a stream that trickles without ever failing kept
// AwaitMethod blocked indefinitely (every reconnect delivered a byte,
// resetting the retry budget, so no terminal error ever reached the
// waiters). With the gate deadline the run must return ErrGateTimeout
// promptly — before the fix this test timed out.
func TestGateDeadlineOnTricklingStream(t *testing.T) {
	p := plan(t, "Hanoi")
	srv := trickleServer(t, p)

	type result struct {
		err error
		in  time.Duration
	}
	res := make(chan result, 1)
	go func() {
		began := time.Now()
		_, _, err := Run(context.Background(), Options{
			URL:       srv.URL + "/app",
			Name:      p.app.Name,
			MainClass: p.rp.MainClass,
			Client:    fastClient(),
			// No TOCURL: no demand path, so the deadline is the only
			// thing standing between the waiter and a hang.
			GateTimeout: 400 * time.Millisecond,
			Run:         vm.Options{Args: p.app.TestArgs, MaxSteps: 5e8},
		})
		res <- result{err, time.Since(began)}
	}()
	select {
	case r := <-res:
		if !errors.Is(r.err, ErrGateTimeout) {
			t.Fatalf("err = %v, want ErrGateTimeout", r.err)
		}
		// The error must identify what execution was blocked on.
		if !strings.Contains(r.err.Error(), "not available after") {
			t.Errorf("gate error %q does not say what was unavailable", r.err)
		}
		if r.in > 10*time.Second {
			t.Errorf("clean error took %v; the deadline was 400ms", r.in)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("kill-the-stream run hung: gate deadline never fired")
	}
}

// TestStreamDeathDegradesToDemandAll kills the main stream permanently
// partway through while bounded Range requests keep working: the run
// must fall back to demand-fetching every remaining unit and still
// produce the exact fault-free output, reporting the degradation.
func TestStreamDeathDegradesToDemandAll(t *testing.T) {
	p := plan(t, "Hanoi")
	want := reference(t, p)
	toc := parseTOC(t, p)
	cut := int(toc[2].Off) - stream.UnitHeaderSize

	mux := http.NewServeMux()
	mux.HandleFunc("/app", func(w http.ResponseWriter, r *http.Request) {
		rng := r.Header.Get("Range")
		if rng != "" && !strings.HasSuffix(rng, "-") {
			// Bounded range: the demand path. Serve it faithfully.
			http.ServeContent(w, r, "app.bin", time.Time{}, bytes.NewReader(p.data))
			return
		}
		if rng != "" {
			// Open-ended range: a main-stream resume. Dead forever.
			panic(http.ErrAbortHandler)
		}
		// Initial connection: deliver the first two units, then die.
		w.Header().Set("Content-Length", fmt.Sprint(len(p.data)))
		w.Write(p.data[:cut])
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler)
	})
	mux.HandleFunc("/app.toc", func(w http.ResponseWriter, r *http.Request) {
		http.ServeContent(w, r, "app.toc.json", time.Time{}, bytes.NewReader(p.toc))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	m, st, err := Run(context.Background(), Options{
		URL:         srv.URL + "/app",
		TOCURL:      srv.URL + "/app.toc",
		Name:        p.app.Name,
		MainClass:   p.rp.MainClass,
		Client:      fastClient(),
		GateTimeout: 10 * time.Second,
		Run:         vm.Options{Args: p.app.TestArgs, MaxSteps: 5e8},
	})
	if err != nil {
		t.Fatalf("stream death should degrade, not fail the run: %v", err)
	}
	checkRun(t, p, m, want)
	if st.Degraded == "" {
		t.Error("stats do not report the degradation")
	}
	if st.DemandFetches == 0 {
		t.Error("degraded run issued no demand fetches")
	}
}

// TestGateTimeoutDisabled: a negative GateTimeout must disable the
// deadline without breaking a healthy run.
func TestGateTimeoutDisabled(t *testing.T) {
	p := plan(t, "Hanoi")
	want := reference(t, p)
	srv := serve(t, p, stream.Fault{})
	m, _, err := Run(context.Background(), Options{
		URL:         srv.URL + "/app",
		TOCURL:      srv.URL + "/app.toc",
		Name:        p.app.Name,
		MainClass:   p.rp.MainClass,
		Client:      fastClient(),
		GateTimeout: -1,
		Run:         vm.Options{Args: p.app.TestArgs, MaxSteps: 5e8},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkRun(t, p, m, want)
}

// TestChaosGarbageRangeDoesNotPoisonTOC is the chaos-harness regression
// test for the fault layer garbaging unit-table resumes. DropEvery=128
// interrupts the TOC transfer mid-body, forcing the client to resume it
// with a Range request; with GarbageRangeEvery=1 every Range reply on
// /app is bogus, so before the fix the TOC could never be fetched and
// the run died at startup with "fetching unit table" — masking all the
// repair behaviour the schedule was meant to exercise. The unit table
// is exempt now: the run may still fail cleanly (every /app resume IS
// garbage), but never because the table was unfetchable.
func TestChaosGarbageRangeDoesNotPoisonTOC(t *testing.T) {
	p := plan(t, "Hanoi")
	want := reference(t, p)
	if int64(len(p.toc)) <= 128 {
		t.Fatalf("unit table only %d bytes; the drop schedule cannot force a resume", len(p.toc))
	}
	_, err := chaosRun(t, p, want, stream.Fault{DropEvery: 128, GarbageRangeEvery: 1, Seed: 21}, fastClient())
	if err != nil && strings.Contains(err.Error(), "fetching unit table") {
		t.Fatalf("unit-table fetch poisoned by the garbage-range schedule: %v", err)
	}
}

// TestDemandFetchSurvivesSplicedCorruption is the S4 regression at the
// demand-fetch layer. A server drops the connection right after a
// corrupted prefix, so a client resuming from the last RECEIVED byte
// assembles a poisoned payload. Before the fix, fetchUnit burned a
// fixed three-attempt budget on such splices with no backoff and gave
// up; now the client restarts from the last VERIFIED byte (the range
// start) under its full retry budget, so five consecutive poisonings
// still end in a verified payload.
func TestDemandFetchSurvivesSplicedCorruption(t *testing.T) {
	p := plan(t, "Hanoi")
	toc := parseTOC(t, p)
	var u stream.UnitInfo
	for _, cand := range toc {
		if cand.Len >= 32 {
			u = cand
			break
		}
	}
	if u.Len < 32 {
		t.Fatal("no unit large enough to splice")
	}

	const poisonings = 5
	var poisoned atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/app", func(w http.ResponseWriter, r *http.Request) {
		var from, to int64 = -1, -1
		fmt.Sscanf(r.Header.Get("Range"), "bytes=%d-%d", &from, &to)
		if from == u.Off && poisoned.Load() < poisonings {
			poisoned.Add(1)
			w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", from, to, len(p.data)))
			w.WriteHeader(http.StatusPartialContent)
			prefix := append([]byte(nil), p.data[from:from+16]...)
			prefix[0] ^= 0x5a
			w.Write(prefix)
			w.(http.Flusher).Flush()
			panic(http.ErrAbortHandler)
		}
		http.ServeContent(w, r, "app.bin", time.Time{}, bytes.NewReader(p.data))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	rt := &runtime{
		opts:   Options{URL: srv.URL + "/app"},
		client: fastClient(),
		ctx:    context.Background(),
	}
	payload, err := rt.fetchUnit(u)
	if err != nil {
		t.Fatalf("fetchUnit under %d poisonings: %v", poisonings, err)
	}
	if stream.ChecksumPayload(payload) != u.CRC {
		t.Fatal("fetchUnit returned an unverified payload")
	}
	if got := poisoned.Load(); got != poisonings {
		t.Fatalf("server poisoned %d fetches, want %d", got, poisonings)
	}
	if rt.demands != 1 || rt.refetches != poisonings {
		t.Fatalf("demands = %d, refetches = %d; want 1 demand and %d refetches",
			rt.demands, rt.refetches, poisonings)
	}
}
