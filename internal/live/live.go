// Package live runs a program while its bytes are still arriving — the
// paper's non-strict execution, for real rather than simulated. It
// pipelines FetchClient → stream.Loader → vm in goroutines: the fetch
// goroutine streams the interleaved virtual file and feeds the loader,
// whose verified units flow into the VM's incremental link state, while
// the VM goroutine executes. First invocation of a method blocks at the
// availability gate until the loader fires MethodReady; a method wanted
// out of predicted order is demand-fetched through a byte-range request
// against the writer's unit table (§5.1's misprediction correction
// applied to the §5.2 virtual file). The runtime records wall-clock
// first-invocation latencies and overlap statistics, the measured
// counterparts of the cycle simulator's predictions.
package live

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"nonstrict/internal/classfile"
	"nonstrict/internal/stream"
	"nonstrict/internal/vm"
)

// DefaultGateTimeout bounds each availability-gate wait when Options
// leaves GateTimeout zero. A transfer that stops making progress —
// stalled connection, endlessly trickling retries — would otherwise park
// the VM forever; the deadline turns that hang into a clean
// per-invocation error.
const DefaultGateTimeout = 30 * time.Second

// ErrGateTimeout marks a gate wait that exceeded its deadline: the
// method or class never became available within Options.GateTimeout.
var ErrGateTimeout = errors.New("live: gate deadline exceeded")

// Options configures one overlapped run.
type Options struct {
	// URL is the interleaved stream's address.
	URL string
	// TOCURL is the writer's unit table address; empty disables demand
	// fetches (every gate wait then rides the main stream).
	TOCURL string
	// Name and MainClass identify the program (as NewLoader takes them).
	Name      string
	MainClass string
	// Client transfers the stream; nil uses a default FetchClient.
	Client *stream.FetchClient
	// GateTimeout bounds each availability-gate wait (AwaitMethod /
	// AwaitClass) and the post-execution stream drain. Zero means
	// DefaultGateTimeout; negative disables the deadline entirely.
	GateTimeout time.Duration
	// Run is passed to the VM.
	Run vm.Options
}

// Wait records one first-invocation gate crossing.
type Wait struct {
	// Method is the invoked method.
	Method classfile.Ref
	// At is when the invocation happened, measured from run start.
	At time.Duration
	// Wait is how long the VM blocked before the method's bytes were in
	// (zero when the stream was ahead of execution).
	Wait time.Duration
	// Demand reports that the bytes came via a demand fetch rather than
	// in predicted stream order.
	Demand bool
}

// Stats is the measured outcome of an overlapped run.
type Stats struct {
	// Transfer snapshots the fetch client's counters.
	Transfer stream.FetchStats
	// StreamBytes is main-stream bytes consumed (headers included);
	// DemandBytes is payload bytes that arrived via demand fetches.
	StreamBytes, DemandBytes int64
	// DemandFetches counts range requests issued for out-of-order needs;
	// Mispredicts counts gate waits that triggered them.
	DemandFetches, Mispredicts int
	// FirstRunnable is when the entry method's bytes were in — the
	// measured invocation latency of the paper's Table 4.
	FirstRunnable time.Duration
	// ExecDone and TransferDone mark, from run start, when execution
	// finished and when the main stream was fully consumed.
	ExecDone, TransferDone time.Duration
	// StallTime is the total time execution spent blocked at the gate.
	StallTime time.Duration
	// Waits lists every first invocation in execution order.
	Waits []Wait
	// Classes and Methods count what actually arrived and linked.
	Classes, Methods int
	// Integrity snapshots the loader's verification counters: corrupt
	// units detected, repair attempts, repaired, quarantined.
	Integrity stream.IntegrityStats
	// Refetches counts byte-range re-fetches issued to replace payloads
	// that arrived corrupt (repair-hook fetches plus demand retries).
	Refetches int
	// Degraded holds the main stream's terminal error when it failed
	// permanently mid-run and the remaining units were demand-fetched
	// instead; empty when the stream completed normally.
	Degraded string
}

// Overlap is the fraction of the execution window not spent stalled —
// the measured analog of sim.Result.Overlap.
func (s *Stats) Overlap() float64 {
	if s.ExecDone <= 0 {
		return 0
	}
	return 1 - float64(s.StallTime)/float64(s.ExecDone)
}

// runtime is the shared state between the transfer, demand, and VM
// goroutines. Its mutex orders strictly before the loader's: gate waits
// hold rt.mu and may query the loader, while event delivery and demand
// feeding take the loader's lock first and rt.mu only after release.
type runtime struct {
	opts   Options
	ctx    context.Context // canceled when the run is abandoned
	client *stream.FetchClient
	loader *stream.Loader
	lv     *vm.LiveLinked
	toc    []stream.UnitInfo
	start  time.Time

	mu          sync.Mutex
	cond        *sync.Cond
	classReady  map[string]bool
	methodReady map[classfile.Ref]bool
	demanded    map[classfile.Ref]bool // method demand launched
	classDem    map[string]bool        // class-global demand launched
	err         error
	degraded    error // main stream died but the demand path can finish the run
	done        bool  // main stream fully consumed (or failed)
	transferEnd time.Duration

	waits       []Wait
	stall       time.Duration
	demands     int
	mispredicts int
	refetches   int
}

// Run executes the program at opts.URL while it streams in, returning
// the finished machine and the measured overlap statistics. The machine
// is valid (with partial profile) even when err is non-nil.
func Run(ctx context.Context, opts Options) (*vm.Machine, *Stats, error) {
	client := opts.Client
	if client == nil {
		client = &stream.FetchClient{}
	}
	rt := &runtime{
		opts:        opts,
		client:      client,
		loader:      stream.NewLoader(opts.Name, opts.MainClass, nil),
		classReady:  make(map[string]bool),
		methodReady: make(map[classfile.Ref]bool),
		demanded:    make(map[classfile.Ref]bool),
		classDem:    make(map[string]bool),
	}
	rt.cond = sync.NewCond(&rt.mu)
	rt.lv = vm.NewLive(opts.Name, opts.MainClass, rt)

	if opts.TOCURL != "" {
		var buf bytes.Buffer
		if _, err := client.Fetch(ctx, opts.TOCURL, &buf); err != nil {
			return nil, nil, fmt.Errorf("live: fetching unit table: %w", err)
		}
		toc, err := stream.ParseTOC(buf.Bytes())
		if err != nil {
			return nil, nil, err
		}
		rt.toc = toc
		// With a unit table in hand, a corrupt main-stream unit can be
		// healed by re-fetching just its bytes instead of failing the
		// transfer.
		rt.loader.Repair = rt.repairUnit
	}

	tctx, tcancel := context.WithCancel(ctx)
	defer tcancel()
	rt.ctx = tctx
	rt.start = time.Now()
	transferDone := make(chan struct{})
	go func() {
		defer close(transferDone)
		rt.transferLoop(tctx)
	}()

	m, runErr := rt.lv.Run(opts.Run)
	execDone := time.Since(rt.start)
	if runErr != nil {
		tcancel() // abandon whatever is still streaming
	}
	// Bound the post-execution drain: a tail that stalls without failing
	// must not hang the run after execution already finished.
	if d := gateTimeout(opts.GateTimeout); d > 0 {
		drain := time.NewTimer(d)
		select {
		case <-transferDone:
			drain.Stop()
		case <-drain.C:
			tcancel()
			<-transferDone
		}
	} else {
		<-transferDone
	}

	rt.mu.Lock()
	st := &Stats{
		Transfer:      client.Stats(),
		StreamBytes:   rt.loader.Consumed(),
		DemandBytes:   rt.loader.DemandBytes(),
		DemandFetches: rt.demands,
		Mispredicts:   rt.mispredicts,
		ExecDone:      execDone,
		TransferDone:  rt.transferEnd,
		StallTime:     rt.stall,
		Waits:         rt.waits,
		Classes:       rt.lv.Classes(),
		Methods:       rt.lv.Methods(),
		Integrity:     rt.loader.Integrity(),
		Refetches:     rt.refetches,
	}
	if rt.degraded != nil {
		st.Degraded = rt.degraded.Error()
	}
	rt.mu.Unlock()
	if len(st.Waits) > 0 {
		st.FirstRunnable = st.Waits[0].At + st.Waits[0].Wait
	}
	return m, st, runErr
}

// transferLoop streams the virtual file into the loader until EOF or
// failure, then marks the runtime done and wakes every gate waiter.
// When the stream dies with a transport or integrity failure and a unit
// table is available, the failure degrades instead of killing the run:
// the remaining units are simply demand-fetched — strict fetching of
// whatever non-strict delivery could not provide.
func (rt *runtime) transferLoop(ctx context.Context) {
	err := func() error {
		body, err := rt.client.Open(ctx, rt.opts.URL)
		if err != nil {
			return err
		}
		defer body.Close()
		return rt.loader.Load(body, func(e stream.Event) {
			if herr := rt.handleEvent(e); herr != nil {
				rt.fail(herr)
			}
		})
	}()
	rt.mu.Lock()
	rt.done = true
	rt.transferEnd = time.Since(rt.start)
	if err != nil && ctx.Err() == nil {
		if rt.toc != nil && degradable(err) {
			if rt.degraded == nil {
				rt.degraded = fmt.Errorf("live: transfer: %w", err)
			}
		} else if rt.err == nil {
			rt.err = fmt.Errorf("live: transfer: %w", err)
		}
	}
	rt.mu.Unlock()
	rt.cond.Broadcast()
}

// degradable reports whether a stream failure leaves the demand path
// usable: the link or the bytes failed, but the unit table still
// describes every unit, so byte-range fetches can finish the program.
// Anything else (a verification failure, a malformed class) is a
// property of the program itself and re-fetching cannot fix it.
func degradable(err error) bool {
	return errors.Is(err, stream.ErrFetchFailed) ||
		errors.Is(err, stream.ErrBadStream) ||
		errors.Is(err, stream.ErrStreamIntegrity)
}

// handleEvent publishes one loader event to the gate. AddClass runs
// before the class is marked ready, so a waiter released by AwaitClass
// always finds the class registered in the link state.
func (rt *runtime) handleEvent(e stream.Event) error {
	switch e.Kind {
	case stream.ClassLinked:
		c := rt.loader.LoadedClass(e.Class)
		if c == nil {
			return fmt.Errorf("live: loader fired ClassLinked for unknown class %q", e.Class)
		}
		if err := rt.lv.AddClass(c); err != nil {
			return err
		}
		rt.mu.Lock()
		rt.classReady[e.Class] = true
		rt.mu.Unlock()
		rt.cond.Broadcast()
	case stream.MethodReady:
		rt.mu.Lock()
		rt.methodReady[e.Method] = true
		rt.mu.Unlock()
		rt.cond.Broadcast()
	}
	return nil
}

// fail records the first terminal error and wakes all gate waiters.
func (rt *runtime) fail(err error) {
	rt.mu.Lock()
	if rt.err == nil {
		rt.err = err
	}
	rt.mu.Unlock()
	rt.cond.Broadcast()
}

// gateTimeout resolves an Options.GateTimeout value: zero means the
// default, negative disables the deadline.
func gateTimeout(d time.Duration) time.Duration {
	if d == 0 {
		return DefaultGateTimeout
	}
	if d < 0 {
		return 0
	}
	return d
}

// gateDeadline returns the absolute deadline for one gate wait, or the
// zero time when deadlines are disabled.
func (rt *runtime) gateDeadline() time.Time {
	if d := gateTimeout(rt.opts.GateTimeout); d > 0 {
		return time.Now().Add(d)
	}
	return time.Time{}
}

// gateWait parks on the gate condition until the next broadcast or the
// deadline, whichever comes first; it reports only whether the deadline
// has passed (the caller re-checks its predicate either way). Caller
// holds rt.mu.
func (rt *runtime) gateWait(deadline time.Time) (timedOut bool) {
	if deadline.IsZero() {
		rt.cond.Wait()
		return false
	}
	wait := time.Until(deadline)
	if wait <= 0 {
		return true
	}
	t := time.AfterFunc(wait, func() {
		// The empty critical section orders the broadcast after the
		// waiter has parked: the callback cannot take rt.mu until
		// cond.Wait has released it, so the wakeup cannot be missed.
		rt.mu.Lock()
		rt.mu.Unlock() //nolint:staticcheck // SA2001: see above
		rt.cond.Broadcast()
	})
	rt.cond.Wait()
	t.Stop()
	return false
}

// AwaitMethod implements vm.Gate: it blocks until ref's body has
// arrived and verified (and its class is linked — a demand-raced
// MethodReady can otherwise outrun ClassLinked delivery), launching a
// demand fetch when the stream will not deliver ref next. The wait is
// bounded by Options.GateTimeout, so a transfer that silently stops
// making progress surfaces as ErrGateTimeout rather than a hang.
func (rt *runtime) AwaitMethod(ref classfile.Ref) error {
	began := time.Now()
	deadline := rt.gateDeadline()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for !(rt.methodReady[ref] && rt.classReady[ref.Class]) {
		if rt.err != nil {
			return rt.err
		}
		launched := rt.maybeDemandMethod(ref)
		if rt.done && !launched && !rt.demanded[ref] {
			if rt.degraded != nil {
				return fmt.Errorf("live: method %v unavailable after stream failure: %w", ref, rt.degraded)
			}
			return fmt.Errorf("live: method %v never arrived and cannot be demanded", ref)
		}
		if rt.gateWait(deadline) {
			return fmt.Errorf("%w: method %v not available after %v", ErrGateTimeout, ref, gateTimeout(rt.opts.GateTimeout))
		}
	}
	w := time.Since(began)
	rt.stall += w
	rt.waits = append(rt.waits, Wait{
		Method: ref,
		At:     began.Sub(rt.start),
		Wait:   w,
		Demand: rt.demanded[ref],
	})
	return nil
}

// AwaitClass implements vm.Gate: it blocks until the class's global
// data has linked, demand-fetching the global unit when it is out of
// predicted order. Bounded by Options.GateTimeout like AwaitMethod.
func (rt *runtime) AwaitClass(class string) error {
	began := time.Now()
	deadline := rt.gateDeadline()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for !rt.classReady[class] {
		if rt.err != nil {
			return rt.err
		}
		launched := rt.maybeDemandClass(class)
		if rt.done && !launched && !rt.classDem[class] {
			if rt.degraded != nil {
				return fmt.Errorf("live: class %q unavailable after stream failure: %w", class, rt.degraded)
			}
			return fmt.Errorf("live: class %q never arrived and cannot be demanded", class)
		}
		if rt.gateWait(deadline) {
			return fmt.Errorf("%w: class %q not available after %v", ErrGateTimeout, class, gateTimeout(rt.opts.GateTimeout))
		}
	}
	rt.stall += time.Since(began)
	return nil
}

// maybeDemandMethod decides whether ref is out of predicted order — the
// next body unit the main stream will deliver is a different method —
// and if so launches a demand fetch. Reports whether a fetch was
// launched. Caller holds rt.mu.
func (rt *runtime) maybeDemandMethod(ref classfile.Ref) bool {
	if rt.toc == nil || rt.demanded[ref] {
		return false
	}
	if !rt.done && !rt.outOfOrder(func(u stream.UnitInfo) bool { return u.Method == ref }) {
		return false // arriving next anyway; cheaper to wait
	}
	rt.demanded[ref] = true
	rt.mispredicts++
	go rt.demandMethod(ref)
	return true
}

// maybeDemandClass is maybeDemandMethod for a class's global unit.
// Caller holds rt.mu.
func (rt *runtime) maybeDemandClass(class string) bool {
	if rt.toc == nil || rt.classDem[class] {
		return false
	}
	match := func(u stream.UnitInfo) bool { return u.Kind == stream.KindGlobal && u.ClassName == class }
	if !rt.done && !rt.outOfOrder(match) {
		return false
	}
	rt.classDem[class] = true
	rt.mispredicts++
	go rt.demandClass(class)
	return true
}

// outOfOrder reports whether the first not-yet-consumed unit matching
// the predicate is NOT the very next unit of its kind the stream will
// deliver — i.e. waiting for the main stream would first sit through
// other units. A matching global unit immediately before the matching
// body does not count as out of order. Caller holds rt.mu.
func (rt *runtime) outOfOrder(match func(stream.UnitInfo) bool) bool {
	cursor := rt.loader.UnitsConsumed()
	if cursor >= len(rt.toc) {
		return true // stream exhausted without a match
	}
	// Skip the in-flight prefix that precedes the awaited unit only if
	// it is this unit's own class global; anything else means the
	// prediction put other work first.
	for i := cursor; i < len(rt.toc); i++ {
		u := rt.toc[i]
		if match(u) {
			return false
		}
		if u.Kind == stream.KindBody {
			return true
		}
		// A global unit for some class: in order only when the awaited
		// unit follows immediately (checked on the next iteration).
	}
	return true
}

// demandMethod pulls ref's body (and, if needed, its class's global
// unit first) out of the stream with range requests and feeds them to
// the loader. Runs on its own goroutine, holding no locks.
func (rt *runtime) demandMethod(ref classfile.Ref) {
	var bodyU *stream.UnitInfo
	for i := range rt.toc {
		if rt.toc[i].Kind == stream.KindBody && rt.toc[i].Method == ref {
			bodyU = &rt.toc[i]
			break
		}
	}
	if bodyU == nil {
		rt.fail(fmt.Errorf("live: method %v is not in the unit table", ref))
		return
	}
	if rt.loader.LoadedClass(ref.Class) == nil {
		if err := rt.fetchGlobal(ref.Class); err != nil {
			rt.fail(err)
			return
		}
	}
	payload, err := rt.fetchUnit(*bodyU)
	if err != nil {
		rt.fail(err)
		return
	}
	evs, err := rt.loader.FeedDemand(bodyU.Class, stream.KindBody, bodyU.Body, payload, bodyU.CRC)
	if err != nil {
		rt.fail(err)
		return
	}
	rt.deliver(evs)
}

// demandClass pulls a class's global unit out of the stream.
func (rt *runtime) demandClass(class string) {
	if rt.loader.LoadedClass(class) != nil {
		// The main stream won the race; the waiter is already released.
		return
	}
	if err := rt.fetchGlobal(class); err != nil {
		rt.fail(err)
	}
}

// fetchGlobal range-fetches and feeds one class's global-data unit.
func (rt *runtime) fetchGlobal(class string) error {
	for _, u := range rt.toc {
		if u.Kind != stream.KindGlobal || u.ClassName != class {
			continue
		}
		payload, err := rt.fetchUnit(u)
		if err != nil {
			return err
		}
		evs, err := rt.loader.FeedDemand(u.Class, stream.KindGlobal, -1, payload, u.CRC)
		if err != nil {
			return err
		}
		rt.deliver(evs)
		return nil
	}
	return fmt.Errorf("live: class %q is not in the unit table", class)
}

// demandAttempts bounds how many times a demand or repair fetch of one
// unit is retried when the reply fails its checksum.
const demandAttempts = 3

// fetchUnit range-fetches one unit's payload and verifies it against
// the unit table's checksum, retrying a bounded number of times: a
// corrupt demand reply is re-fetched, never installed.
func (rt *runtime) fetchUnit(u stream.UnitInfo) ([]byte, error) {
	rt.mu.Lock()
	rt.demands++
	rt.mu.Unlock()
	for attempt := 1; ; attempt++ {
		var buf bytes.Buffer
		if _, err := rt.client.FetchRange(rt.ctx, rt.opts.URL, u.Off, int64(u.Len), &buf); err != nil {
			return nil, fmt.Errorf("live: demand fetch of unit at %d: %w", u.Off, err)
		}
		if p := buf.Bytes(); stream.ChecksumPayload(p) == u.CRC {
			return p, nil
		}
		if attempt >= demandAttempts {
			return nil, fmt.Errorf("live: demand fetch of unit at %d: %w: payload failed its checksum %d times",
				u.Off, stream.ErrStreamIntegrity, attempt)
		}
		rt.mu.Lock()
		rt.refetches++
		rt.mu.Unlock()
	}
}

// repairUnit is the loader's Repair hook: the main stream delivered a
// unit whose payload failed its checksum, so re-fetch just that unit's
// bytes with a range request against the unit table. The loader
// re-verifies the returned payload, so this only has to deliver bytes.
func (rt *runtime) repairUnit(req stream.RepairRequest) ([]byte, error) {
	var u *stream.UnitInfo
	for i := range rt.toc {
		t := &rt.toc[i]
		if t.Class == req.Class && t.Kind == req.Kind &&
			(req.Kind == stream.KindGlobal || t.Body == req.Body) {
			u = t
			break
		}
	}
	if u == nil {
		return nil, fmt.Errorf("live: corrupt %d-byte unit (class %d, body %d) is not in the unit table",
			req.Len, req.Class, req.Body)
	}
	rt.mu.Lock()
	rt.refetches++
	rt.mu.Unlock()
	var buf bytes.Buffer
	if _, err := rt.client.FetchRange(rt.ctx, rt.opts.URL, u.Off, int64(u.Len), &buf); err != nil {
		return nil, fmt.Errorf("live: repair fetch of unit at %d: %w", u.Off, err)
	}
	return buf.Bytes(), nil
}

// deliver publishes demand-path loader events.
func (rt *runtime) deliver(evs []stream.Event) {
	for _, e := range evs {
		if err := rt.handleEvent(e); err != nil {
			rt.fail(err)
			return
		}
	}
}
