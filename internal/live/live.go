// Package live runs a program while its bytes are still arriving — the
// paper's non-strict execution, for real rather than simulated. It
// pipelines FetchClient → stream.Loader → vm in goroutines: the fetch
// goroutine streams the interleaved virtual file and feeds the loader,
// whose verified units flow into the VM's incremental link state, while
// the VM goroutine executes. First invocation of a method blocks at the
// availability gate until the loader fires MethodReady; a method wanted
// out of predicted order is demand-fetched through a byte-range request
// against the writer's unit table (§5.1's misprediction correction
// applied to the §5.2 virtual file). The runtime records wall-clock
// first-invocation latencies and overlap statistics, the measured
// counterparts of the cycle simulator's predictions.
package live

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"nonstrict/internal/classfile"
	"nonstrict/internal/obs"
	"nonstrict/internal/stream"
	"nonstrict/internal/vm"
)

// DefaultGateTimeout bounds each availability-gate wait when Options
// leaves GateTimeout zero. A transfer that stops making progress —
// stalled connection, endlessly trickling retries — would otherwise park
// the VM forever; the deadline turns that hang into a clean
// per-invocation error.
const DefaultGateTimeout = 30 * time.Second

// ErrGateTimeout marks a gate wait that exceeded its deadline: the
// method or class never became available within Options.GateTimeout.
var ErrGateTimeout = errors.New("live: gate deadline exceeded")

// Options configures one overlapped run.
type Options struct {
	// URL is the interleaved stream's address.
	URL string
	// TOCURL is the writer's unit table address; empty disables demand
	// fetches (every gate wait then rides the main stream).
	TOCURL string
	// Name and MainClass identify the program (as NewLoader takes them).
	Name      string
	MainClass string
	// Client transfers the stream; nil uses a default FetchClient.
	Client *stream.FetchClient
	// GateTimeout bounds each availability-gate wait (AwaitMethod /
	// AwaitClass) and the post-execution stream drain. Zero means
	// DefaultGateTimeout; negative disables the deadline entirely.
	GateTimeout time.Duration
	// Obs, when non-nil, records gate crossings, demand fetches,
	// repairs, degradation, first invocations, and the loader's
	// unit-level events for tracing. The fetch client's recorder is NOT
	// set from here — a shared Client may be serving concurrent runs —
	// so callers who also want transfer events (retries, resumes) set
	// Client.Obs themselves before the first request.
	Obs *obs.Recorder
	// Run is passed to the VM.
	Run vm.Options
}

// Wait records one first-invocation gate crossing.
type Wait struct {
	// Method is the invoked method.
	Method classfile.Ref
	// At is when the invocation happened, measured from run start.
	At time.Duration
	// Wait is how long the VM blocked before the method's bytes were in
	// (zero when the stream was ahead of execution).
	Wait time.Duration
	// Transfer, Repair, and Gate decompose Wait: time blocked while the
	// method's bytes were still in flight (main stream or demand fetch),
	// time blocked inside integrity-repair re-fetches of corrupt units,
	// and the residual between the bytes being ready and the waiter
	// actually proceeding (wakeup latency, lock handoff). They sum to
	// Wait exactly, by construction.
	Transfer, Repair, Gate time.Duration
	// Demand reports that the bytes came via a demand fetch rather than
	// in predicted stream order.
	Demand bool
}

// Stats is the measured outcome of an overlapped run.
type Stats struct {
	// Transfer snapshots the fetch client's counters.
	Transfer stream.FetchStats
	// StreamBytes is main-stream bytes consumed (headers included);
	// DemandBytes is payload bytes that arrived via demand fetches.
	StreamBytes, DemandBytes int64
	// DemandFetches counts range requests issued for out-of-order needs;
	// Mispredicts counts gate waits that triggered them.
	DemandFetches, Mispredicts int
	// FirstRunnable is when the entry method's bytes were in — the
	// measured invocation latency of the paper's Table 4.
	FirstRunnable time.Duration
	// ExecDone and TransferDone mark, from run start, when execution
	// finished and when the main stream was fully consumed.
	ExecDone, TransferDone time.Duration
	// StallTime is the total time execution spent blocked at the gate.
	StallTime time.Duration
	// Waits lists every first invocation in execution order.
	Waits []Wait
	// Classes and Methods count what actually arrived and linked.
	Classes, Methods int
	// Integrity snapshots the loader's verification counters: corrupt
	// units detected, repair attempts, repaired, quarantined.
	Integrity stream.IntegrityStats
	// Refetches counts byte-range re-fetches issued to replace payloads
	// that arrived corrupt (repair-hook fetches plus demand retries).
	Refetches int
	// Degraded holds the main stream's terminal error when it failed
	// permanently mid-run and the remaining units were demand-fetched
	// instead; empty when the stream completed normally.
	Degraded string
}

// Overlap is the fraction of the execution window not spent stalled —
// the measured analog of sim.Result.Overlap. It is always in [0, 1]:
// a zero or negative execution window (a run that failed before the
// clock meaningfully advanced) yields 0 rather than NaN or ±Inf, and
// measurement jitter that lands StallTime outside the window is
// clamped rather than reported as a nonsense ratio.
func (s *Stats) Overlap() float64 {
	if s.ExecDone <= 0 {
		return 0
	}
	o := 1 - float64(s.StallTime)/float64(s.ExecDone)
	switch {
	case o < 0:
		return 0
	case o > 1:
		return 1
	}
	return o
}

// Attribution decomposes one method's measured first-invocation
// latency — run start to the method's body entering execution — into
// where the time went. Execute + Transfer + Repair + Gate == Latency
// exactly, by construction: the three wait components accumulate every
// gate crossing up to and including this one, and Execute is whatever
// the run spent outside the method gate (executing, linking, and any
// class-global gate waits).
type Attribution struct {
	// Method is the invoked method.
	Method classfile.Ref
	// Latency is run start → first instruction of Method.
	Latency time.Duration
	// Execute is time spent off the method gate before this invocation.
	Execute time.Duration
	// Transfer is cumulative gate time spent waiting on bytes in flight.
	Transfer time.Duration
	// Repair is cumulative gate time spent inside integrity repairs.
	Repair time.Duration
	// Gate is cumulative residual gate overhead (wakeup, lock handoff).
	Gate time.Duration
	// Demand marks that this method's bytes came via a demand fetch.
	Demand bool
}

// Attributions derives the per-method stall attribution from the run's
// gate crossings, in execution order.
func (s *Stats) Attributions() []Attribution {
	out := make([]Attribution, 0, len(s.Waits))
	var waited, transfer, repair, gate time.Duration
	for _, w := range s.Waits {
		exec := w.At - waited
		if exec < 0 {
			exec = 0 // clock-granularity slop; waits cannot overlap
		}
		transfer += w.Transfer
		repair += w.Repair
		gate += w.Gate
		waited += w.Wait
		out = append(out, Attribution{
			Method:   w.Method,
			Latency:  w.At + w.Wait,
			Execute:  exec,
			Transfer: transfer,
			Repair:   repair,
			Gate:     gate,
			Demand:   w.Demand,
		})
	}
	return out
}

// runtime is the shared state between the transfer, demand, and VM
// goroutines. Its mutex orders strictly before the loader's: gate waits
// hold rt.mu and may query the loader, while event delivery and demand
// feeding take the loader's lock first and rt.mu only after release.
type runtime struct {
	opts   Options
	ctx    context.Context // canceled when the run is abandoned
	client *stream.FetchClient
	loader *stream.Loader
	lv     *vm.LiveLinked
	toc    []stream.UnitInfo
	obs    *obs.Recorder
	start  time.Time

	// now and afterFunc are the gate's time sources, injectable for
	// deterministic deadline tests; nil means the real clock. The gate
	// treats now as advisory wall time (measurement only) and afterFunc
	// as the sole monotonic authority for deadlines — see AwaitMethod.
	now       func() time.Time
	afterFunc func(time.Duration, func()) gateTimer

	mu          sync.Mutex
	cond        *sync.Cond
	classReady  map[string]bool
	methodReady map[classfile.Ref]bool
	demanded    map[classfile.Ref]bool // method demand launched
	classDem    map[string]bool        // class-global demand launched
	methodsAt   map[classfile.Ref]time.Duration
	classesAt   map[string]time.Duration
	repairSpans []span // completed integrity-repair windows, in order
	err         error
	degraded    error // main stream died but the demand path can finish the run
	done        bool  // main stream fully consumed (or failed)
	transferEnd time.Duration

	waits       []Wait
	stall       time.Duration
	demands     int
	mispredicts int
	refetches   int
}

// gateTimer is the slice of *time.Timer the gate needs, so tests can
// substitute a hand-cranked clock.
type gateTimer interface{ Stop() bool }

// span is a half-open window [From, To) measured from run start.
type span struct{ From, To time.Duration }

func (rt *runtime) clockNow() time.Time {
	if rt.now != nil {
		return rt.now()
	}
	return time.Now()
}

func (rt *runtime) armGate(d time.Duration, f func()) gateTimer {
	if rt.afterFunc != nil {
		return rt.afterFunc(d, f)
	}
	return time.AfterFunc(d, f)
}

// sinceStart is the run clock: elapsed time since Run began.
func (rt *runtime) sinceStart() time.Duration { return rt.clockNow().Sub(rt.start) }

// attributeWait splits one gate wait [began, woke) into its transfer /
// repair / gate components. ready is when the awaited bytes became
// usable; repairs are the completed repair windows. The three parts sum
// to woke-began exactly: arrival time before ready is transfer except
// where a repair window overlaps it, and everything after ready is
// residual gate overhead.
func attributeWait(began, woke, ready time.Duration, repairs []span) (transfer, repair, gate time.Duration) {
	if ready < began {
		ready = began
	}
	if ready > woke {
		ready = woke
	}
	for _, s := range repairs {
		from, to := s.From, s.To
		if from < began {
			from = began
		}
		if to > ready {
			to = ready
		}
		if to > from {
			repair += to - from
		}
	}
	if arrive := ready - began; repair > arrive {
		repair = arrive
	}
	transfer = ready - began - repair
	gate = woke - ready
	return transfer, repair, gate
}

// Run executes the program at opts.URL while it streams in, returning
// the finished machine and the measured overlap statistics. The machine
// is valid (with partial profile) even when err is non-nil.
func Run(ctx context.Context, opts Options) (*vm.Machine, *Stats, error) {
	client := opts.Client
	if client == nil {
		client = &stream.FetchClient{}
	}
	rt := &runtime{
		opts:        opts,
		client:      client,
		loader:      stream.NewLoader(opts.Name, opts.MainClass, nil),
		obs:         opts.Obs,
		classReady:  make(map[string]bool),
		methodReady: make(map[classfile.Ref]bool),
		demanded:    make(map[classfile.Ref]bool),
		classDem:    make(map[string]bool),
		methodsAt:   make(map[classfile.Ref]time.Duration),
		classesAt:   make(map[string]time.Duration),
	}
	rt.cond = sync.NewCond(&rt.mu)
	rt.loader.Obs = opts.Obs
	rt.lv = vm.NewLive(opts.Name, opts.MainClass, rt)

	if opts.TOCURL != "" {
		var buf bytes.Buffer
		if _, err := client.Fetch(ctx, opts.TOCURL, &buf); err != nil {
			return nil, nil, fmt.Errorf("live: fetching unit table: %w", err)
		}
		toc, err := stream.ParseTOC(buf.Bytes())
		if err != nil {
			return nil, nil, err
		}
		rt.toc = toc
		// With a unit table in hand, a corrupt main-stream unit can be
		// healed by re-fetching just its bytes instead of failing the
		// transfer.
		rt.loader.Repair = rt.repairUnit
	}

	tctx, tcancel := context.WithCancel(ctx)
	defer tcancel()
	rt.ctx = tctx
	rt.start = rt.clockNow()
	transferDone := make(chan struct{})
	go func() {
		defer close(transferDone)
		rt.transferLoop(tctx)
	}()

	runOpts := opts.Run
	if rt.obs != nil {
		inner := runOpts.OnFirstUse
		runOpts.OnFirstUse = func(ref classfile.Ref) {
			rt.obs.Emit(obs.FirstInvocation, ref.String(), 0, 0)
			if inner != nil {
				inner(ref)
			}
		}
	}
	m, runErr := rt.lv.Run(runOpts)
	execDone := rt.sinceStart()
	if runErr != nil {
		tcancel() // abandon whatever is still streaming
	}
	// Bound the post-execution drain: a tail that stalls without failing
	// must not hang the run after execution already finished.
	if d := gateTimeout(opts.GateTimeout); d > 0 {
		drain := time.NewTimer(d)
		select {
		case <-transferDone:
			drain.Stop()
		case <-drain.C:
			tcancel()
			<-transferDone
		}
	} else {
		<-transferDone
	}

	rt.mu.Lock()
	st := &Stats{
		Transfer:      client.Stats(),
		StreamBytes:   rt.loader.Consumed(),
		DemandBytes:   rt.loader.DemandBytes(),
		DemandFetches: rt.demands,
		Mispredicts:   rt.mispredicts,
		ExecDone:      execDone,
		TransferDone:  rt.transferEnd,
		StallTime:     rt.stall,
		Waits:         rt.waits,
		Classes:       rt.lv.Classes(),
		Methods:       rt.lv.Methods(),
		Integrity:     rt.loader.Integrity(),
		Refetches:     rt.refetches,
	}
	if rt.degraded != nil {
		st.Degraded = rt.degraded.Error()
	}
	rt.mu.Unlock()
	if len(st.Waits) > 0 {
		st.FirstRunnable = st.Waits[0].At + st.Waits[0].Wait
	}
	return m, st, runErr
}

// transferLoop streams the virtual file into the loader until EOF or
// failure, then marks the runtime done and wakes every gate waiter.
// When the stream dies with a transport or integrity failure and a unit
// table is available, the failure degrades instead of killing the run:
// the remaining units are simply demand-fetched — strict fetching of
// whatever non-strict delivery could not provide.
func (rt *runtime) transferLoop(ctx context.Context) {
	err := func() error {
		body, err := rt.client.Open(ctx, rt.opts.URL)
		if err != nil {
			return err
		}
		defer body.Close()
		return rt.loader.Load(body, func(e stream.Event) {
			if herr := rt.handleEvent(e); herr != nil {
				rt.fail(herr)
			}
		})
	}()
	rt.mu.Lock()
	rt.done = true
	rt.transferEnd = rt.sinceStart()
	if err != nil && ctx.Err() == nil {
		if rt.toc != nil && degradable(err) {
			if rt.degraded == nil {
				rt.degraded = fmt.Errorf("live: transfer: %w", err)
				rt.obs.Emit(obs.Degraded, err.Error(), 0, 0)
			}
		} else if rt.err == nil {
			rt.err = fmt.Errorf("live: transfer: %w", err)
		}
	}
	rt.mu.Unlock()
	rt.cond.Broadcast()
}

// degradable reports whether a stream failure leaves the demand path
// usable: the link or the bytes failed, but the unit table still
// describes every unit, so byte-range fetches can finish the program.
// Anything else (a verification failure, a malformed class) is a
// property of the program itself and re-fetching cannot fix it.
func degradable(err error) bool {
	return errors.Is(err, stream.ErrFetchFailed) ||
		errors.Is(err, stream.ErrBadStream) ||
		errors.Is(err, stream.ErrStreamIntegrity)
}

// handleEvent publishes one loader event to the gate. AddClass runs
// before the class is marked ready, so a waiter released by AwaitClass
// always finds the class registered in the link state.
func (rt *runtime) handleEvent(e stream.Event) error {
	switch e.Kind {
	case stream.ClassLinked:
		c := rt.loader.LoadedClass(e.Class)
		if c == nil {
			return fmt.Errorf("live: loader fired ClassLinked for unknown class %q", e.Class)
		}
		if err := rt.lv.AddClass(c); err != nil {
			return err
		}
		rt.mu.Lock()
		if !rt.classReady[e.Class] {
			rt.classReady[e.Class] = true
			if rt.classesAt != nil {
				rt.classesAt[e.Class] = rt.sinceStart()
			}
		}
		rt.mu.Unlock()
		rt.cond.Broadcast()
	case stream.MethodReady:
		rt.mu.Lock()
		if !rt.methodReady[e.Method] {
			rt.methodReady[e.Method] = true
			if rt.methodsAt != nil {
				rt.methodsAt[e.Method] = rt.sinceStart()
			}
		}
		rt.mu.Unlock()
		rt.cond.Broadcast()
	}
	return nil
}

// fail records the first terminal error and wakes all gate waiters.
func (rt *runtime) fail(err error) {
	rt.mu.Lock()
	if rt.err == nil {
		rt.err = err
	}
	rt.mu.Unlock()
	rt.cond.Broadcast()
}

// gateTimeout resolves an Options.GateTimeout value: zero means the
// default, negative disables the deadline.
func gateTimeout(d time.Duration) time.Duration {
	if d == 0 {
		return DefaultGateTimeout
	}
	if d < 0 {
		return 0
	}
	return d
}

// gateBudget arms the deadline for one gate wait: a single timer for
// the wait's whole budget, armed once at entry, that flips *expired
// under rt.mu and broadcasts. The returned stop releases the timer.
//
// The budget is deliberately a DURATION handed to one timer, never an
// absolute deadline re-derived from the clock. The previous
// implementation re-armed a fresh timer on every spurious wakeup with
// the remaining budget recomputed by wall-clock subtraction; any step
// between the clock readings — a suspended host, NTP slew, a VM
// migration — inflated or collapsed the remaining budget, so the
// deadline could fire arbitrarily early or never. A duration-based
// timer tracks the monotonic clock, and because the budget is never
// recomputed, a wall step cannot touch it.
//
// The expired flag is written under rt.mu before the broadcast, so the
// wakeup cannot be missed: if the waiter has not parked yet it still
// holds rt.mu and the callback blocks until cond.Wait releases it.
func (rt *runtime) gateBudget(expired *bool) (stop func()) {
	d := gateTimeout(rt.opts.GateTimeout)
	if d <= 0 {
		return func() {}
	}
	t := rt.armGate(d, func() {
		rt.mu.Lock()
		*expired = true
		rt.mu.Unlock()
		rt.cond.Broadcast()
	})
	return func() { t.Stop() }
}

// AwaitMethod implements vm.Gate: it blocks until ref's body has
// arrived and verified (and its class is linked — a demand-raced
// MethodReady can otherwise outrun ClassLinked delivery), launching a
// demand fetch when the stream will not deliver ref next. The wait is
// bounded by Options.GateTimeout, so a transfer that silently stops
// making progress surfaces as ErrGateTimeout rather than a hang.
func (rt *runtime) AwaitMethod(ref classfile.Ref) error {
	began := rt.clockNow()
	expired := false
	stop := rt.gateBudget(&expired)
	defer stop()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	blocked := false
	for !(rt.methodReady[ref] && rt.classReady[ref.Class]) {
		if rt.err != nil {
			return rt.err
		}
		launched := rt.maybeDemandMethod(ref)
		if rt.done && !launched && !rt.demanded[ref] {
			if rt.degraded != nil {
				return fmt.Errorf("live: method %v unavailable after stream failure: %w", ref, rt.degraded)
			}
			return fmt.Errorf("live: method %v never arrived and cannot be demanded", ref)
		}
		if expired {
			return fmt.Errorf("%w: method %v not available after %v", ErrGateTimeout, ref, gateTimeout(rt.opts.GateTimeout))
		}
		if !blocked {
			blocked = true
			rt.obs.Emit(obs.GateBlock, ref.String(), 0, 0)
		}
		rt.cond.Wait()
	}
	woke := rt.clockNow()
	w := woke.Sub(began)
	if w < 0 {
		w = 0 // injected clocks may be coarse or stepped
	}
	at := began.Sub(rt.start)
	transfer, repair, gate := attributeWait(at, at+w, rt.methodReadyAt(ref), rt.repairSpans)
	rt.stall += w
	rt.waits = append(rt.waits, Wait{
		Method:   ref,
		At:       at,
		Wait:     w,
		Transfer: transfer,
		Repair:   repair,
		Gate:     gate,
		Demand:   rt.demanded[ref],
	})
	if blocked {
		rt.obs.Emit(obs.GateUnblock, ref.String(), 0, w)
	}
	return nil
}

// methodReadyAt is when both of ref's gate conditions (body verified,
// class linked) held, measured from run start. Caller holds rt.mu.
func (rt *runtime) methodReadyAt(ref classfile.Ref) time.Duration {
	ready := rt.methodsAt[ref]
	if c := rt.classesAt[ref.Class]; c > ready {
		ready = c
	}
	return ready
}

// AwaitClass implements vm.Gate: it blocks until the class's global
// data has linked, demand-fetching the global unit when it is out of
// predicted order. Bounded by Options.GateTimeout like AwaitMethod.
func (rt *runtime) AwaitClass(class string) error {
	began := rt.clockNow()
	expired := false
	stop := rt.gateBudget(&expired)
	defer stop()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	blocked := false
	for !rt.classReady[class] {
		if rt.err != nil {
			return rt.err
		}
		launched := rt.maybeDemandClass(class)
		if rt.done && !launched && !rt.classDem[class] {
			if rt.degraded != nil {
				return fmt.Errorf("live: class %q unavailable after stream failure: %w", class, rt.degraded)
			}
			return fmt.Errorf("live: class %q never arrived and cannot be demanded", class)
		}
		if expired {
			return fmt.Errorf("%w: class %q not available after %v", ErrGateTimeout, class, gateTimeout(rt.opts.GateTimeout))
		}
		if !blocked {
			blocked = true
			rt.obs.Emit(obs.GateBlock, "class "+class, 0, 0)
		}
		rt.cond.Wait()
	}
	w := rt.clockNow().Sub(began)
	if w < 0 {
		w = 0
	}
	rt.stall += w
	if blocked {
		rt.obs.Emit(obs.GateUnblock, "class "+class, 0, w)
	}
	return nil
}

// maybeDemandMethod decides whether ref is out of predicted order — the
// next body unit the main stream will deliver is a different method —
// and if so launches a demand fetch. Reports whether a fetch was
// launched. Caller holds rt.mu.
func (rt *runtime) maybeDemandMethod(ref classfile.Ref) bool {
	if rt.toc == nil || rt.demanded[ref] {
		return false
	}
	if !rt.done && !rt.outOfOrder(func(u stream.UnitInfo) bool { return u.Method == ref }) {
		return false // arriving next anyway; cheaper to wait
	}
	rt.demanded[ref] = true
	rt.mispredicts++
	rt.obs.Emit(obs.DemandIssue, ref.String(), 0, 0)
	go rt.demandMethod(ref)
	return true
}

// maybeDemandClass is maybeDemandMethod for a class's global unit.
// Caller holds rt.mu.
func (rt *runtime) maybeDemandClass(class string) bool {
	if rt.toc == nil || rt.classDem[class] {
		return false
	}
	match := func(u stream.UnitInfo) bool { return u.Kind == stream.KindGlobal && u.ClassName == class }
	if !rt.done && !rt.outOfOrder(match) {
		return false
	}
	rt.classDem[class] = true
	rt.mispredicts++
	rt.obs.Emit(obs.DemandIssue, "class "+class, 0, 0)
	go rt.demandClass(class)
	return true
}

// outOfOrder reports whether the first not-yet-consumed unit matching
// the predicate is NOT the very next unit of its kind the stream will
// deliver — i.e. waiting for the main stream would first sit through
// other units. A matching global unit immediately before the matching
// body does not count as out of order. Caller holds rt.mu.
func (rt *runtime) outOfOrder(match func(stream.UnitInfo) bool) bool {
	cursor := rt.loader.UnitsConsumed()
	if cursor >= len(rt.toc) {
		return true // stream exhausted without a match
	}
	// Skip the in-flight prefix that precedes the awaited unit only if
	// it is this unit's own class global; anything else means the
	// prediction put other work first.
	for i := cursor; i < len(rt.toc); i++ {
		u := rt.toc[i]
		if match(u) {
			return false
		}
		if u.Kind == stream.KindBody {
			return true
		}
		// A global unit for some class: in order only when the awaited
		// unit follows immediately (checked on the next iteration).
	}
	return true
}

// demandMethod pulls ref's body (and, if needed, its class's global
// unit first) out of the stream with range requests and feeds them to
// the loader. Runs on its own goroutine, holding no locks.
func (rt *runtime) demandMethod(ref classfile.Ref) {
	var bodyU *stream.UnitInfo
	for i := range rt.toc {
		if rt.toc[i].Kind == stream.KindBody && rt.toc[i].Method == ref {
			bodyU = &rt.toc[i]
			break
		}
	}
	if bodyU == nil {
		rt.fail(fmt.Errorf("live: method %v is not in the unit table", ref))
		return
	}
	if rt.loader.LoadedClass(ref.Class) == nil {
		if err := rt.fetchGlobal(ref.Class); err != nil {
			rt.fail(err)
			return
		}
	}
	began := rt.sinceStart()
	payload, err := rt.fetchUnit(*bodyU)
	if err != nil {
		rt.fail(err)
		return
	}
	evs, err := rt.loader.FeedDemand(bodyU.Class, stream.KindBody, bodyU.Body, payload, bodyU.CRC)
	if err != nil {
		rt.fail(err)
		return
	}
	rt.deliver(evs)
	rt.obs.Emit(obs.DemandDone, ref.String(), int64(len(payload)), rt.sinceStart()-began)
}

// demandClass pulls a class's global unit out of the stream.
func (rt *runtime) demandClass(class string) {
	if rt.loader.LoadedClass(class) != nil {
		// The main stream won the race; the waiter is already released.
		return
	}
	if err := rt.fetchGlobal(class); err != nil {
		rt.fail(err)
	}
}

// fetchGlobal range-fetches and feeds one class's global-data unit.
func (rt *runtime) fetchGlobal(class string) error {
	for _, u := range rt.toc {
		if u.Kind != stream.KindGlobal || u.ClassName != class {
			continue
		}
		began := rt.sinceStart()
		payload, err := rt.fetchUnit(u)
		if err != nil {
			return err
		}
		evs, err := rt.loader.FeedDemand(u.Class, stream.KindGlobal, -1, payload, u.CRC)
		if err != nil {
			return err
		}
		rt.deliver(evs)
		rt.obs.Emit(obs.DemandDone, "class "+class, int64(len(payload)), rt.sinceStart()-began)
		return nil
	}
	return fmt.Errorf("live: class %q is not in the unit table", class)
}

// fetchUnit range-fetches one unit's payload, verified against the
// unit table's checksum by the client: a payload spliced together
// across a reconnect that fails verification is discarded and
// re-fetched from the range start (the last verified byte), never
// installed and never resumed from the unverified splice point.
func (rt *runtime) fetchUnit(u stream.UnitInfo) ([]byte, error) {
	rt.mu.Lock()
	rt.demands++
	rt.mu.Unlock()
	p, attempts, err := rt.client.FetchRangeVerified(rt.ctx, rt.opts.URL, u.Off, int64(u.Len), u.CRC)
	if attempts > 1 {
		rt.mu.Lock()
		rt.refetches += attempts - 1
		rt.mu.Unlock()
	}
	if err != nil {
		return nil, fmt.Errorf("live: demand fetch of unit at %d: %w", u.Off, err)
	}
	return p, nil
}

// repairUnit is the loader's Repair hook: the main stream delivered a
// unit whose payload failed its checksum, so re-fetch just that unit's
// bytes with a range request against the unit table. The loader
// re-verifies the returned payload, so this only has to deliver bytes.
func (rt *runtime) repairUnit(req stream.RepairRequest) ([]byte, error) {
	var u *stream.UnitInfo
	for i := range rt.toc {
		t := &rt.toc[i]
		if t.Class == req.Class && t.Kind == req.Kind &&
			(req.Kind == stream.KindGlobal || t.Body == req.Body) {
			u = t
			break
		}
	}
	if u == nil {
		return nil, fmt.Errorf("live: corrupt %d-byte unit (class %d, body %d) is not in the unit table",
			req.Len, req.Class, req.Body)
	}
	began := rt.sinceStart()
	rt.mu.Lock()
	rt.refetches++
	rt.mu.Unlock()
	p, _, err := rt.client.FetchRangeVerified(rt.ctx, rt.opts.URL, u.Off, int64(u.Len), u.CRC)
	if err != nil {
		return nil, fmt.Errorf("live: repair fetch of unit at %d: %w", u.Off, err)
	}
	rt.mu.Lock()
	rt.repairSpans = append(rt.repairSpans, span{From: began, To: rt.sinceStart()})
	rt.mu.Unlock()
	return p, nil
}

// deliver publishes demand-path loader events.
func (rt *runtime) deliver(evs []stream.Event) {
	for _, e := range evs {
		if err := rt.handleEvent(e); err != nil {
			rt.fail(err)
			return
		}
	}
}
