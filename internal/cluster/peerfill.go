package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http"

	"nonstrict/internal/server"
	"nonstrict/internal/stream"
)

// peerFetcher transfers artifact bytes from a peer. It is a
// stream.FetchClient underneath, so a peer fill inherits the same
// fault tolerance client transfers get: per-attempt timeouts, capped
// backoff with deterministic jitter, Retry-After honoured when the
// owner is shedding, and mid-stream resume pinned to the first
// response's ETag — a fill can never silently splice two generations
// of the owner's artifact.
type peerFetcher struct {
	fc *stream.FetchClient
}

func newPeerFetcher(client *http.Client, name string) peerFetcher {
	if client == nil {
		client = &http.Client{}
	}
	return peerFetcher{fc: &stream.FetchClient{
		HTTP: client,
		// Fills are node-to-node on fast links; fail over to a local
		// build quickly rather than riding the full client retry budget.
		MaxRetries: 3,
		JitterSeed: seedFromName(name),
	}}
}

// seedFromName derives a per-node jitter seed so concurrent fills
// across the cluster do not retry in lockstep.
func seedFromName(name string) uint64 {
	var x uint64
	for _, b := range []byte(name) {
		x = x*131 + uint64(b) + 1
	}
	if x == 0 {
		x = 1
	}
	return x
}

// peerFill transfers k's artifact from owner and re-verifies it
// locally: the unit table must parse, every unit must be in bounds and
// match its checksum (server.NewArtifact), and only then is the
// artifact published — at which point the cache's ordinary write-
// through persists it to this node's crash-safe store exactly as if it
// had been built here. The returned artifact is marked PeerFilled so
// the cache counts the flight under PeerFills, keeping the cluster-wide
// sum of Builds at one per key.
func (n *Node) peerFill(ctx context.Context, k server.Key, owner string) (*server.Artifact, error) {
	base, ok := n.peers[owner]
	if !ok || base == "" {
		return nil, fmt.Errorf("cluster: node %s: no address for owner %s of %s", n.name, owner, k)
	}
	ctx, cancel := context.WithTimeout(ctx, n.fillTimeout)
	defer cancel()

	var toc bytes.Buffer
	if _, err := n.fc.fc.Fetch(ctx, base+"/apps/"+k.App+"/app.toc", &toc); err != nil {
		return nil, fmt.Errorf("cluster: node %s: filling %s from %s: toc: %w", n.name, k, owner, err)
	}
	var data bytes.Buffer
	if _, err := n.fc.fc.Fetch(ctx, base+"/apps/"+k.App+"/app", &data); err != nil {
		return nil, fmt.Errorf("cluster: node %s: filling %s from %s: stream: %w", n.name, k, owner, err)
	}
	art, err := server.NewArtifact(k, data.Bytes(), toc.Bytes())
	if err != nil {
		return nil, fmt.Errorf("cluster: node %s: fill from %s rejected: %w", n.name, owner, err)
	}
	art.PeerFilled = true
	return art, nil
}
