package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"nonstrict/internal/server"
)

// HarnessConfig configures an in-process cluster: N real nodes on
// loopback listeners plus a router over them. Tests, the fleet
// simulator's cluster scenario, and the scaling benchmark all boot
// through it.
type HarnessConfig struct {
	// Nodes is the member count (default 3).
	Nodes int
	// VNodes and Seed parameterize the ring (defaults: DefaultVNodes,
	// seed 0).
	VNodes int
	Seed   uint64
	// Server is the per-node template; Build and Store must be unset,
	// and StoreDir is treated as a root under which each node gets its
	// own subdirectory.
	Server server.Config
	// EgressBytesPerSec caps each node's outbound bandwidth (0 = no
	// cap); see EgressLimiter.
	EgressBytesPerSec int
	// RouterCooldown overrides the router's down-node cooldown.
	RouterCooldown time.Duration
	// FillTimeout overrides the nodes' peer-fill budget.
	FillTimeout time.Duration
}

// Harness is a running in-process cluster.
type Harness struct {
	ring   *Ring
	names  []string
	nodes  []*Node
	urls   map[string]string
	router *Router

	mu     sync.Mutex
	hsrvs  []*http.Server
	lns    []net.Listener
	conns  []map[net.Conn]struct{}
	killed []bool
	frozen []NodeStats // stats captured at kill time, index-aligned
}

// NewHarness boots the cluster. Every node is listening and the router
// is ready before it returns; artifacts are still cold (use Prewarm).
func NewHarness(c HarnessConfig) (*Harness, error) {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.Server.Build != nil || c.Server.Store != nil {
		return nil, fmt.Errorf("cluster: harness template must leave Build and Store unset")
	}
	names := make([]string, c.Nodes)
	for i := range names {
		names[i] = fmt.Sprintf("node%d", i)
	}
	ring, err := NewRing(names, c.VNodes, c.Seed)
	if err != nil {
		return nil, err
	}
	h := &Harness{
		ring:   ring,
		names:  names,
		urls:   make(map[string]string, c.Nodes),
		nodes:  make([]*Node, c.Nodes),
		hsrvs:  make([]*http.Server, c.Nodes),
		lns:    make([]net.Listener, c.Nodes),
		conns:  make([]map[net.Conn]struct{}, c.Nodes),
		killed: make([]bool, c.Nodes),
		frozen: make([]NodeStats, c.Nodes),
	}
	// Listen first so every node knows every peer's address at build
	// time; serving starts only once all nodes exist.
	for i, name := range names {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			h.Close()
			return nil, err
		}
		h.lns[i] = ln
		h.urls[name] = "http://" + ln.Addr().String()
	}
	lim := func() *EgressLimiter { return NewEgressLimiter(c.EgressBytesPerSec) }
	for i, name := range names {
		sc := c.Server
		if sc.StoreDir != "" {
			sc.StoreDir = filepath.Join(sc.StoreDir, name)
		}
		peers := make(map[string]string, c.Nodes-1)
		for n, u := range h.urls {
			if n != name {
				peers[n] = u
			}
		}
		node, err := NewNode(NodeConfig{
			Name:        name,
			Ring:        ring,
			Peers:       peers,
			Server:      sc,
			FillTimeout: c.FillTimeout,
		})
		if err != nil {
			h.Close()
			return nil, err
		}
		h.nodes[i] = node
		h.conns[i] = make(map[net.Conn]struct{})
		idx := i
		hs := &http.Server{
			Handler: lim().Wrap(node.Handler()),
			ConnState: func(conn net.Conn, st http.ConnState) {
				h.mu.Lock()
				switch st {
				case http.StateNew:
					h.conns[idx][conn] = struct{}{}
				case http.StateClosed, http.StateHijacked:
					delete(h.conns[idx], conn)
				}
				h.mu.Unlock()
			},
		}
		h.hsrvs[i] = hs
		go hs.Serve(h.lns[i])
	}
	rt, err := NewRouter(RouterConfig{
		Ring:     ring,
		Nodes:    h.urls,
		Order:    c.Server.Order,
		Cooldown: c.RouterCooldown,
	})
	if err != nil {
		h.Close()
		return nil, err
	}
	h.router = rt
	return h, nil
}

// Ring returns the cluster's ring.
func (h *Harness) Ring() *Ring { return h.ring }

// Names returns the member names in node order.
func (h *Harness) Names() []string { return append([]string(nil), h.names...) }

// Node returns member i.
func (h *Harness) Node(i int) *Node { return h.nodes[i] }

// NodeURL returns member i's base URL.
func (h *Harness) NodeURL(i int) string { return h.urls[h.names[i]] }

// Router returns the cluster's router; mount it on any listener (the
// fleet serves it over its in-process shaped listener).
func (h *Harness) Router() *Router { return h.router }

// Owner returns the index of the node owning key k.
func (h *Harness) Owner(k server.Key) int {
	name := h.ring.Owner(k.String())
	for i, n := range h.names {
		if n == name {
			return i
		}
	}
	return -1
}

// Prewarm builds or fills every (app, key) on every node: each key's
// owner runs the pipeline once, every other node peer-fills, so
// afterwards the whole cluster serves warm and the build counters are
// exactly (keys, keys×(nodes−1)) split between Builds and PeerFills.
func (h *Harness) Prewarm(ctx context.Context, apps []string) error {
	for _, app := range apps {
		// Owner first, then the fillers: the order does not change any
		// counter (a filler's GET triggers the owner's singleflighted
		// build either way) but keeps the warm sequence deterministic.
		k := server.Key{App: app, Order: h.nodes[0].srv.Order()}
		order := []int{h.Owner(k)}
		for i := range h.nodes {
			if i != order[0] {
				order = append(order, i)
			}
		}
		for _, i := range order {
			if h.killedAt(i) {
				continue
			}
			if _, err := h.nodes[i].srv.Warm(ctx, app); err != nil {
				return fmt.Errorf("cluster: prewarm %s on %s: %w", app, h.names[i], err)
			}
		}
	}
	return nil
}

func (h *Harness) killedAt(i int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.killed[i]
}

// Kill crashes member i: its listener closes and every live connection
// is severed mid-byte, exactly as a dead process would leave them. It
// returns how many connections were cut. The node's stats freeze at
// this instant. Safe to call once per node.
func (h *Harness) Kill(i int) int {
	h.mu.Lock()
	if h.killed[i] {
		h.mu.Unlock()
		return 0
	}
	h.killed[i] = true
	n := len(h.conns[i])
	st := h.nodes[i].Stats()
	st.Killed = true
	h.frozen[i] = st
	h.mu.Unlock()
	// Close severs active connections as well as the listener; the
	// ConnState hook drains h.conns[i] as they die.
	h.hsrvs[i].Close()
	return n
}

// Stats snapshots every member, killed nodes reporting their counters
// as frozen at death.
func (h *Harness) Stats() []NodeStats {
	out := make([]NodeStats, len(h.nodes))
	for i := range h.nodes {
		h.mu.Lock()
		killed := h.killed[i]
		frozen := h.frozen[i]
		h.mu.Unlock()
		if killed {
			out[i] = frozen
		} else {
			out[i] = h.nodes[i].Stats()
		}
	}
	return out
}

// ClusterBuilds sums pipeline executions across the cluster — the
// number the one-build-per-key invariant bounds by the key count.
func (h *Harness) ClusterBuilds() (builds, peerFills, fallbacks int64) {
	for _, st := range h.Stats() {
		builds += st.Cache.Builds
		peerFills += st.Cache.PeerFills
		fallbacks += st.FallbackBuilds
	}
	return
}

// Close shuts every member down.
func (h *Harness) Close() {
	for i, hs := range h.hsrvs {
		if hs != nil {
			hs.Close()
		}
		if h.lns[i] != nil {
			h.lns[i].Close()
		}
	}
}
