package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"nonstrict/internal/server"
	"nonstrict/internal/stream"
	"nonstrict/internal/synth"
)

// clusterApps registers the package's synthetic suite once (the app
// registry is process-global).
var clusterApps = sync.OnceValues(func() ([]string, error) {
	names, _, err := synth.RegisterSuite(0xC1A57E9, 4, synth.Params{Name: "clustertest"})
	return names, err
})

func testApps(t *testing.T) []string {
	t.Helper()
	names, err := clusterApps()
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// TestClusterColdStormSingleBuild is the acceptance storm: 3 nodes,
// 64 concurrent clients per node, every key cold, every client hitting
// its own node directly. The composed singleflights must collapse the
// whole storm to exactly one pipeline build per (app, order) key
// cluster-wide — non-owners peer-fill, nobody falls back — and every
// node must serve byte-identical artifacts under identical ETags.
func TestClusterColdStormSingleBuild(t *testing.T) {
	apps := testApps(t)
	h, err := NewHarness(HarnessConfig{
		Nodes:  3,
		Seed:   0x57A8,
		Server: server.Config{Apps: apps, Order: server.OrderStatic},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	const perNode = 64
	var wg sync.WaitGroup
	errs := make(chan error, 3*perNode)
	bodies := make([][]byte, 3*perNode)
	etags := make([]string, 3*perNode)
	assigned := make([]string, 3*perNode)
	for node := 0; node < 3; node++ {
		for c := 0; c < perNode; c++ {
			idx := node*perNode + c
			app := apps[idx%len(apps)]
			assigned[idx] = app
			url := h.NodeURL(node) + "/apps/" + app + "/app"
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: %s", url, resp.Status)
					return
				}
				b, err := io.ReadAll(resp.Body)
				if err != nil {
					errs <- err
					return
				}
				bodies[idx], etags[idx] = b, resp.Header.Get("ETag")
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Per-app, every client — whichever node served it — got identical
	// bytes under an identical validator.
	ref := map[string]int{}
	for idx, app := range assigned {
		if j, ok := ref[app]; ok {
			if !bytes.Equal(bodies[idx], bodies[j]) || etags[idx] != etags[j] {
				t.Fatalf("app %s: divergent artifacts across the cluster (etag %s vs %s)", app, etags[idx], etags[j])
			}
		} else {
			ref[app] = idx
		}
	}

	builds, fills, fallbacks := h.ClusterBuilds()
	keys := int64(len(apps))
	if builds != keys {
		t.Fatalf("cluster-wide builds = %d for %d keys; the storm duplicated pipeline work (stats %+v)", builds, keys, h.Stats())
	}
	if fallbacks != 0 {
		t.Fatalf("%d peer fills fell back to local builds with every node healthy", fallbacks)
	}
	if want := keys * 2; fills != want {
		t.Fatalf("peer fills = %d, want %d (every non-owner fills each key exactly once)", fills, want)
	}
}

// TestPeerFillRejectsCorruptTransfer pins the verification boundary: a
// peer that serves corrupted bytes must not get them published or
// persisted — the fill fails closed and the node falls back to a local
// build, still answering its client correctly.
func TestPeerFillRejectsCorruptTransfer(t *testing.T) {
	apps := testApps(t)
	ring, err := NewRing([]string{"good", "evil"}, 0, 0xBAD)
	if err != nil {
		t.Fatal(err)
	}
	// Pick an app the OTHER node owns, so our node must peer-fill it.
	var app string
	for _, a := range apps {
		if ring.Owner(server.Key{App: a, Order: server.OrderStatic}.String()) == "evil" {
			app = a
			break
		}
	}
	if app == "" {
		t.Fatal("no test app hashes to the evil node; change the ring seed")
	}
	art, err := server.Build(context.Background(), server.Key{App: app, Order: server.OrderStatic})
	if err != nil {
		t.Fatal(err)
	}
	units, err := stream.ParseTOC(art.TOC)
	if err != nil {
		t.Fatal(err)
	}
	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/apps/"+app+"/app.toc" {
			w.Write(art.TOC)
			return
		}
		// Corrupt one byte INSIDE a unit payload, where the checksum
		// sweep must catch it (header bytes are not unit-covered).
		bad := append([]byte(nil), art.Data...)
		bad[units[0].Off] ^= 0xFF
		w.Write(bad)
	}))
	defer evil.Close()

	node, err := NewNode(NodeConfig{
		Name:  "good",
		Ring:  ring,
		Peers: map[string]string{"evil": evil.URL},
		Server: server.Config{
			Apps:  []string{app},
			Order: server.OrderStatic,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ns := httptest.NewServer(node.Handler())
	defer ns.Close()

	resp, err := http.Get(ns.URL + "/apps/" + app + "/app")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, art.Data) {
		t.Fatal("node served bytes that differ from the real artifact")
	}
	if n := node.FallbackBuilds(); n != 1 {
		t.Fatalf("fallback builds = %d, want 1 (corrupt fill must fail closed into a local build)", n)
	}
	cs := node.Server().CacheStats()
	if cs.PeerFills != 0 || cs.Builds != 1 {
		t.Fatalf("counters after corrupt fill: builds=%d peer_fills=%d, want 1/0", cs.Builds, cs.PeerFills)
	}
}

// TestRouterFailoverResume is the owner-death regression the satellite
// pins: a client streams through the router, the owning node is killed
// between the initial 200 and the resume, and the client must finish
// with byte-perfect data by resuming — If-Range pinned to the ETag it
// saw — against the failover replica. No splice, no restart, no error.
func TestRouterFailoverResume(t *testing.T) {
	apps := testApps(t)
	app := apps[0]
	art, err := server.Build(context.Background(), server.Key{App: app, Order: server.OrderStatic})
	if err != nil {
		t.Fatal(err)
	}
	// Pace the stream so the kill lands mid-body: the whole artifact
	// takes ~500ms to serve, and the client reads it through a byte-rate
	// that keeps the connection live when the owner dies.
	rate := len(art.Data) * 2
	h, err := NewHarness(HarnessConfig{
		Nodes:          3,
		Seed:           0xFA11,
		Server:         server.Config{Apps: []string{app}, Order: server.OrderStatic, Rate: rate},
		RouterCooldown: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.Prewarm(context.Background(), []string{app}); err != nil {
		t.Fatal(err)
	}
	rs := httptest.NewServer(h.Router())
	defer rs.Close()

	fc := &stream.FetchClient{JitterSeed: 5, BackoffBase: 10 * time.Millisecond}
	body, err := fc.Open(context.Background(), rs.URL+"/apps/"+app+"/app")
	if err != nil {
		t.Fatal(err)
	}
	defer body.Close()

	// Read a prefix, then crash the owner while the rest is in flight.
	prefix := make([]byte, 1024)
	if _, err := io.ReadFull(body, prefix); err != nil {
		t.Fatal(err)
	}
	owner := h.Owner(server.Key{App: app, Order: server.OrderStatic})
	if n := h.Kill(owner); n == 0 {
		t.Fatal("killing the owner severed no connections; the stream was not mid-flight")
	}
	rest, err := io.ReadAll(body)
	if err != nil {
		t.Fatalf("stream did not survive the owner's death: %v", err)
	}
	got := append(prefix, rest...)
	if !bytes.Equal(got, art.Data) {
		t.Fatalf("resumed stream differs from the artifact (%d vs %d bytes)", len(got), len(art.Data))
	}
	if st := fc.Stats(); st.Resumes == 0 {
		t.Fatal("transfer completed without a resume; the kill did not exercise the failover path")
	}
	if st := h.Router().Stats(); st.Aborts == 0 || st.Failovers == 0 {
		t.Fatalf("router stats %+v: expected at least one abort and one failover", st)
	}
}

// TestRouterRefusesCrossGenerationSplice is the adversarial half of
// the same satellite: if the failover target serves a DIFFERENT
// artifact (new ETag, full 200), the client must refuse to splice it
// onto the bytes it already has — ErrArtifactChanged, not silent
// corruption. The ETag pin must survive the router hop.
func TestRouterRefusesCrossGenerationSplice(t *testing.T) {
	apps := testApps(t)
	app := apps[0]
	art, err := server.Build(context.Background(), server.Key{App: app, Order: server.OrderStatic})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"real", "impostor"}
	ring, err := NewRing(names, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	key := server.Key{App: app, Order: server.OrderStatic}

	realSrv, err := server.New(server.Config{Apps: []string{app}, Order: server.OrderStatic, Rate: len(art.Data) * 2})
	if err != nil {
		t.Fatal(err)
	}
	realHTTP := httptest.NewServer(realSrv.Handler())
	defer realHTTP.Close()
	// The impostor ignores Range and If-Range and serves different
	// bytes under a different strong validator — a replica from another
	// generation, or a lying cache.
	impostor := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("ETag", `"deadbeefdeadbeef"`)
		w.Write(bytes.Repeat([]byte{0xAB}, len(art.Data)))
	}))
	defer impostor.Close()

	owner := ring.Owner(key.String())
	nodes := map[string]string{}
	for _, n := range names {
		if n == owner {
			nodes[n] = realHTTP.URL
		} else {
			nodes[n] = impostor.URL
		}
	}
	rt, err := NewRouter(RouterConfig{Ring: ring, Nodes: nodes, Order: server.OrderStatic, Cooldown: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt)
	defer rts.Close()

	fc := &stream.FetchClient{JitterSeed: 5, BackoffBase: 5 * time.Millisecond, MaxRetries: 4}
	body, err := fc.Open(context.Background(), rts.URL+"/apps/"+app+"/app")
	if err != nil {
		t.Fatal(err)
	}
	defer body.Close()
	prefix := make([]byte, 512)
	if _, err := io.ReadFull(body, prefix); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(prefix, art.Data[:512]) {
		t.Fatal("prefix did not come from the real artifact")
	}
	// Kill the real backend between the 200 and the resume; the router
	// fails over to the impostor.
	realHTTP.CloseClientConnections()
	realHTTP.Close()
	_, err = io.ReadAll(body)
	if !errors.Is(err, stream.ErrArtifactChanged) {
		t.Fatalf("read across the impostor failover: err=%v, want ErrArtifactChanged (a silent splice would corrupt the stream)", err)
	}
}

// TestRouterRevalidation checks conditional requests survive the hop:
// a client that already holds the artifact revalidates to 304 through
// the router.
func TestRouterRevalidation(t *testing.T) {
	apps := testApps(t)
	app := apps[1]
	h, err := NewHarness(HarnessConfig{
		Nodes:  2,
		Seed:   0x304,
		Server: server.Config{Apps: []string{app}, Order: server.OrderStatic},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.Prewarm(context.Background(), []string{app}); err != nil {
		t.Fatal(err)
	}
	rs := httptest.NewServer(h.Router())
	defer rs.Close()

	resp, err := http.Get(rs.URL + "/apps/" + app + "/app")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag through the router")
	}
	req, _ := http.NewRequest(http.MethodGet, rs.URL+"/apps/"+app+"/app", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation through the router: %s, want 304", resp2.Status)
	}
}
