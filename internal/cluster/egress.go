package cluster

import (
	"net/http"
	"sync"
	"time"
)

// EgressLimiter is a token-bucket cap on one node's total outbound
// body bytes per second — the stand-in for a real node's NIC when the
// whole cluster runs inside one process. The scaling benchmark needs
// it to be honest: without a per-node egress bound, N in-process
// "nodes" share one machine's memory bandwidth and the 1→N ladder
// measures nothing. With it, each node has fixed serving capacity and
// streams/sec scales with node count exactly as far as the sharding
// actually spreads the load.
//
// All streams through one node share the bucket, so concurrent
// responses divide the node's capacity — contention, not per-stream
// shaping (stream.LinkClass models the client's last mile; this models
// the server's uplink).
type EgressLimiter struct {
	rate  float64 // bytes per second
	burst float64

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// NewEgressLimiter builds a limiter at rate bytes/second. rate <= 0
// returns nil, and a nil limiter imposes no cap.
func NewEgressLimiter(rate int) *EgressLimiter {
	if rate <= 0 {
		return nil
	}
	burst := float64(rate) / 10
	if burst < 16<<10 {
		burst = 16 << 10
	}
	return &EgressLimiter{rate: float64(rate), burst: burst, tokens: burst, last: time.Now()}
}

// take blocks until n bytes of egress budget are available.
func (e *EgressLimiter) take(n int) {
	for {
		e.mu.Lock()
		now := time.Now()
		e.tokens += now.Sub(e.last).Seconds() * e.rate
		e.last = now
		if e.tokens > e.burst {
			e.tokens = e.burst
		}
		if e.tokens >= float64(n) {
			e.tokens -= float64(n)
			e.mu.Unlock()
			return
		}
		wait := time.Duration((float64(n) - e.tokens) / e.rate * float64(time.Second))
		e.mu.Unlock()
		time.Sleep(wait)
	}
}

// Wrap caps h's response bodies under the bucket. A nil limiter
// returns h unchanged.
func (e *EgressLimiter) Wrap(h http.Handler) http.Handler {
	if e == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.ServeHTTP(&egressWriter{rw: w, lim: e}, r)
	})
}

// egressWriter charges every chunk to the bucket before writing it,
// flushing after each so downstream consumers see paced progress.
type egressWriter struct {
	rw  http.ResponseWriter
	lim *EgressLimiter
}

func (w *egressWriter) Header() http.Header  { return w.rw.Header() }
func (w *egressWriter) WriteHeader(code int) { w.rw.WriteHeader(code) }

func (w *egressWriter) Write(b []byte) (int, error) {
	const chunk = 16 << 10
	fl, _ := w.rw.(http.Flusher)
	written := 0
	for off := 0; off < len(b); off += chunk {
		end := off + chunk
		if end > len(b) {
			end = len(b)
		}
		w.lim.take(end - off)
		n, err := w.rw.Write(b[off:end])
		written += n
		if err != nil {
			return written, err
		}
		if fl != nil {
			fl.Flush()
		}
	}
	return written, nil
}

func (w *egressWriter) Flush() {
	if fl, ok := w.rw.(http.Flusher); ok {
		fl.Flush()
	}
}
