// Package cluster shards the non-strict code server across N nodes
// behind a consistent-hash router. Each (app, order-policy) key is
// owned by exactly one node; non-owners that are asked for a key
// transfer the owner's verified byte stream once (a peer fill) instead
// of running the build pipeline themselves, so a storm of cold
// requests across the whole cluster still produces exactly one build.
// The router proxies client traffic to the owning node and fails over
// to replicas without ever splicing two upstream streams into one
// response body — a mid-body upstream death aborts the client
// connection so the fetch client's pinned-ETag If-Range resume decides
// what is safe to continue.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per physical node when a
// config leaves it zero: enough points that a 4-node ring's key shares
// stay within a few percent of even.
const DefaultVNodes = 64

// Ring is a consistent-hash ring over named nodes. Placement depends
// only on (names, vnodes, seed) — never on the order names were given
// or on which process computes it — so every node and every router
// derives the same owner for every key without coordination.
type Ring struct {
	seed   uint64
	vnodes int
	names  []string // sorted, deduplicated
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring. vnodes <= 0 selects DefaultVNodes.
func NewRing(names []string, vnodes int, seed uint64) (*Ring, error) {
	if len(names) == 0 {
		return nil, errors.New("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for i, n := range sorted {
		if n == "" {
			return nil, errors.New("cluster: empty node name")
		}
		if i > 0 && sorted[i-1] == n {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n)
		}
	}
	r := &Ring{seed: seed, vnodes: vnodes, names: sorted}
	r.points = make([]ringPoint, 0, len(sorted)*vnodes)
	for _, n := range sorted {
		for v := 0; v < vnodes; v++ {
			h := r.hash(fmt.Sprintf("%s#%d", n, v))
			r.points = append(r.points, ringPoint{hash: h, node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Equal hashes are astronomically unlikely but must still order
		// deterministically, or two processes could disagree on ownership.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// hash maps a string to a ring position: FNV-64a over the seed and the
// bytes, then a splitmix64 finalizer so nearby inputs (node#0, node#1)
// land far apart.
func (r *Ring) hash(s string) uint64 {
	h := fnv.New64a()
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], r.seed)
	h.Write(seed[:])
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Nodes returns the member names in sorted order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.names...) }

// Owner returns the node that owns key: the first virtual node at or
// after the key's position, wrapping at the top of the ring.
func (r *Ring) Owner(key string) string {
	return r.points[r.search(key)].node
}

// Pref returns every node ordered by preference for key: the owner
// first, then each distinct node in ring-walk order. The router walks
// this list when nodes die; any process with the same ring walks it
// identically.
func (r *Ring) Pref(key string) []string {
	out := make([]string, 0, len(r.names))
	seen := make(map[string]bool, len(r.names))
	i := r.search(key)
	for range r.points {
		n := r.points[i].node
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
			if len(out) == len(r.names) {
				break
			}
		}
		i++
		if i == len(r.points) {
			i = 0
		}
	}
	return out
}

// search finds the index of the first point at or after key's hash.
func (r *Ring) search(key string) int {
	h := r.hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}
