package cluster

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nonstrict/internal/server"
)

// RouterConfig configures the cluster's client-facing proxy.
type RouterConfig struct {
	// Ring decides placement; it must be the same ring the nodes use.
	Ring *Ring
	// Nodes maps every member name to its base URL (http://host:port).
	Nodes map[string]string
	// Order is the cluster's order policy; it completes the (app, order)
	// key the ring hashes and must match the nodes' configured policy.
	// Empty means server.OrderStatic.
	Order string
	// Client issues upstream requests; nil uses a private default.
	Client *http.Client
	// Cooldown is how long a node that failed to answer is skipped
	// before being retried (default 2s).
	Cooldown time.Duration
	// Now is the health clock; tests override it. nil means time.Now.
	Now func() time.Time
}

// Router fronts the cluster: it derives the (app, order) key from the
// request path, walks the ring's preference list, and streams the
// first healthy node's response through to the client with per-chunk
// flushing, so non-strict delivery keeps overlapping execution with
// transfer across the extra hop.
//
// Failover happens only BETWEEN responses, never inside one: once a
// single body byte has been forwarded, an upstream death aborts the
// client connection instead of continuing from a different node. The
// bytes are identical on every node (deterministic builds), but the
// router does not get to assume that — the fetch client's pinned-ETag
// If-Range resume re-establishes it end to end, with the replica's own
// 206 as proof. A router that spliced internally would be trusting
// what the client can verify.
type Router struct {
	ring     *Ring
	nodes    map[string]string
	order    string
	client   *http.Client
	cooldown time.Duration
	now      func() time.Time

	mu        sync.Mutex
	downUntil map[string]time.Time

	proxied   atomic.Int64
	failovers atomic.Int64
	aborts    atomic.Int64
}

// NewRouter builds a router over the ring and node addresses.
func NewRouter(c RouterConfig) (*Router, error) {
	if c.Ring == nil {
		return nil, errors.New("cluster: router needs a ring")
	}
	for _, n := range c.Ring.Nodes() {
		if c.Nodes[n] == "" {
			return nil, fmt.Errorf("cluster: router has no address for ring member %q", n)
		}
	}
	if c.Order == "" {
		c.Order = server.OrderStatic
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return &Router{
		ring:      c.Ring,
		nodes:     c.Nodes,
		order:     c.Order,
		client:    c.Client,
		cooldown:  c.Cooldown,
		now:       c.Now,
		downUntil: make(map[string]time.Time),
	}, nil
}

// RouterStats snapshots the router's counters.
type RouterStats struct {
	// Proxied is responses forwarded to clients.
	Proxied int64 `json:"proxied"`
	// Failovers is requests answered by a node other than the key's
	// owner because earlier preferences were down.
	Failovers int64 `json:"failovers"`
	// Aborts is client connections severed because the upstream died
	// mid-body; each one is a client-side resume, never a splice.
	Aborts int64 `json:"aborts"`
}

// Stats returns the router's counters.
func (rt *Router) Stats() RouterStats {
	return RouterStats{
		Proxied:   rt.proxied.Load(),
		Failovers: rt.failovers.Load(),
		Aborts:    rt.aborts.Load(),
	}
}

// ServeHTTP routes one client request.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		return
	}
	var pref []string
	if app, ok := appFromPath(r.URL.Path); ok {
		k := server.Key{App: app, Order: rt.order}
		pref = rt.ring.Pref(k.String())
	} else {
		// Not an artifact path (/apps index, /metrics, /readyz, ...):
		// placement does not apply, any healthy node can answer.
		pref = rt.ring.Nodes()
	}
	rt.proxy(w, r, pref)
}

// appFromPath extracts the app name from an artifact path
// (/apps/{name}/app or /apps/{name}/app.toc).
func appFromPath(p string) (string, bool) {
	rest, ok := strings.CutPrefix(p, "/apps/")
	if !ok {
		return "", false
	}
	name, tail, ok := strings.Cut(rest, "/")
	if !ok || name == "" || (tail != "app" && tail != "app.toc") {
		return "", false
	}
	return name, true
}

// hopHeaders are the request headers that matter across the hop; the
// conditional ones carry the client's pinned validator through to the
// backend, which is what makes a cross-node resume safe.
var hopHeaders = []string{"Range", "If-Range", "If-None-Match", "If-Modified-Since", "Accept", "Accept-Encoding"}

// proxy tries each preferred node in order until one yields a
// response, then streams it through. A node that cannot be reached (or
// errors before committing a response) is put in cooldown and the next
// preference is tried; an error after body bytes have been forwarded
// aborts the client connection instead.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, pref []string) {
	var lastErr error
	for i, name := range pref {
		if rt.isDown(name) {
			continue
		}
		resp, err := rt.forward(r, rt.nodes[name])
		if err != nil {
			if r.Context().Err() != nil {
				return // the client gave up; nobody is listening
			}
			rt.markDown(name)
			lastErr = err
			continue
		}
		if i > 0 {
			rt.failovers.Add(1)
		}
		rt.stream(w, r, resp, name)
		return
	}
	if lastErr == nil {
		lastErr = errors.New("cluster: every node is in cooldown")
	}
	w.Header().Set("Retry-After", "1")
	http.Error(w, fmt.Sprintf("cluster: no node available: %v", lastErr), http.StatusBadGateway)
}

// forward issues the upstream request for one candidate node.
func (rt *Router) forward(r *http.Request, base string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, base+r.URL.RequestURI(), nil)
	if err != nil {
		return nil, err
	}
	for _, h := range hopHeaders {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	return rt.client.Do(req)
}

// stream forwards one upstream response body with per-chunk flushing.
func (rt *Router) stream(w http.ResponseWriter, r *http.Request, resp *http.Response, name string) {
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		h[k] = vs
	}
	w.WriteHeader(resp.StatusCode)
	rt.proxied.Add(1)

	fl, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	wrote := false
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return // client went away; nothing to salvage
			}
			wrote = true
			if fl != nil {
				fl.Flush()
			}
		}
		if rerr == io.EOF {
			return
		}
		if rerr != nil {
			// The upstream died mid-body. The status line and some bytes
			// are already on the wire, so this response cannot be retried
			// here — and continuing it from another node would splice two
			// upstream streams into one body behind the client's back.
			// Sever the connection instead: the fetch client resumes with
			// a Range pinned to the ETag it saw, and the failover node's
			// 206 (or changed-ETag refusal) decides safety end to end.
			rt.markDown(name)
			if wrote || r.Context().Err() == nil {
				rt.aborts.Add(1)
				panic(http.ErrAbortHandler)
			}
			return
		}
	}
}

// isDown reports whether name is cooling down after a failure.
func (rt *Router) isDown(name string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.now().Before(rt.downUntil[name])
}

// markDown starts name's cooldown.
func (rt *Router) markDown(name string) {
	rt.mu.Lock()
	rt.downUntil[name] = rt.now().Add(rt.cooldown)
	rt.mu.Unlock()
}
