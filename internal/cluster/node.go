package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"nonstrict/internal/server"
)

// NodeConfig configures one cluster member.
type NodeConfig struct {
	// Name is this node's ring identity. Required, and must be a member
	// of Ring.
	Name string
	// Ring is the cluster's shared consistent-hash ring. Required.
	Ring *Ring
	// Peers maps every OTHER member's name to its base URL
	// (http://host:port). A missing peer is treated as unreachable: keys
	// it owns fall back to a local build.
	Peers map[string]string
	// Server is the underlying code-server configuration. Its Build
	// field must be nil — the node installs the peer-fill build path.
	Server server.Config
	// Client issues peer-fill requests; nil uses a private default.
	Client *http.Client
	// FillTimeout bounds one peer-fill transfer, retries included
	// (default 30s). On expiry the node falls back to building locally.
	FillTimeout time.Duration
}

// Node is one cluster member: a full code server whose build path is
// replaced by shard-aware routing. For keys this node owns, a cache
// miss runs the real pipeline exactly as a standalone server would.
// For keys another node owns, a miss transfers the owner's verified
// bytes instead — and because the transfer runs as the cache's build
// function, it inherits singleflight (one fill per key no matter how
// many cold requests race), admission control, and the crash-safe
// store write-through unchanged. The two local singleflights compose
// into the cluster-wide one: every non-owner's storm collapses to one
// peer-fill GET, and the owner's storm (those GETs included) collapses
// to one pipeline run.
type Node struct {
	name        string
	ring        *Ring
	peers       map[string]string
	srv         *server.Server
	fc          peerFetcher
	fillTimeout time.Duration

	// fallbackBuilds counts peer fills that failed (owner dead or
	// unreachable, transfer unverifiable) and were satisfied by a local
	// build instead. Each one is a real pipeline run on a non-owner, so
	// the cluster invariant weakens from builds == keys to
	// builds <= keys + fallbacks; healthy clusters hold it at zero.
	fallbackBuilds atomic.Int64
}

// NewNode builds a cluster member. The returned node serves exactly
// like a standalone server.Server — mount Handler on an http.Server.
func NewNode(c NodeConfig) (*Node, error) {
	if c.Ring == nil {
		return nil, fmt.Errorf("cluster: node %q: nil ring", c.Name)
	}
	member := false
	for _, n := range c.Ring.Nodes() {
		if n == c.Name {
			member = true
			break
		}
	}
	if !member {
		return nil, fmt.Errorf("cluster: node %q is not a ring member %v", c.Name, c.Ring.Nodes())
	}
	if c.Server.Build != nil {
		return nil, fmt.Errorf("cluster: node %q: Server.Build must be nil (the node owns the build path)", c.Name)
	}
	if c.FillTimeout <= 0 {
		c.FillTimeout = 30 * time.Second
	}
	n := &Node{
		name:        c.Name,
		ring:        c.Ring,
		peers:       c.Peers,
		fillTimeout: c.FillTimeout,
	}
	n.fc = newPeerFetcher(c.Client, c.Name)
	sc := c.Server
	sc.Build = n.buildOrFill
	srv, err := server.New(sc)
	if err != nil {
		return nil, err
	}
	n.srv = srv
	return n, nil
}

// buildOrFill is the node's cache-miss path: build locally when this
// node owns the key, otherwise transfer the owner's verified bytes,
// degrading to a counted local build when the owner cannot deliver.
func (n *Node) buildOrFill(ctx context.Context, k server.Key) (*server.Artifact, error) {
	owner := n.ring.Owner(k.String())
	if owner == n.name {
		return server.Build(ctx, k)
	}
	art, err := n.peerFill(ctx, k, owner)
	if err == nil {
		return art, nil
	}
	// The owner is down, shedding past our patience, or served bytes
	// that failed verification. Availability wins over the one-build
	// economy: build locally and count the exception.
	n.fallbackBuilds.Add(1)
	return server.Build(ctx, k)
}

// Name returns the node's ring identity.
func (n *Node) Name() string { return n.name }

// Ring returns the cluster's shared ring.
func (n *Node) Ring() *Ring { return n.ring }

// Handler returns the node's HTTP handler (the full code-server
// surface: /apps, /metrics, /healthz, ...).
func (n *Node) Handler() http.Handler { return n.srv.Handler() }

// Server exposes the underlying code server for stats and drain.
func (n *Node) Server() *server.Server { return n.srv }

// FallbackBuilds reports peer fills that degraded to local builds.
func (n *Node) FallbackBuilds() int64 { return n.fallbackBuilds.Load() }

// Stats snapshots the node's cluster-relevant counters.
func (n *Node) Stats() NodeStats {
	return NodeStats{
		Name:           n.name,
		Cache:          n.srv.CacheStats(),
		FallbackBuilds: n.fallbackBuilds.Load(),
	}
}

// NodeStats is one node's block in cluster reports. The JSON tags are
// part of the BENCH_cluster.json schema.
type NodeStats struct {
	Name           string            `json:"name"`
	Cache          server.CacheStats `json:"cache"`
	FallbackBuilds int64             `json:"fallback_builds"`
	// Killed marks a node the scenario deliberately crashed; its
	// counters are frozen at death.
	Killed bool `json:"killed,omitempty"`
}
