package cluster

import (
	"fmt"
	"testing"
)

// TestRingDeterministic pins the placement contract: ownership depends
// only on (names, vnodes, seed), never on input order or which process
// computes it.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing([]string{"node0", "node1", "node2"}, 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"node2", "node0", "node1"}, 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("app%d/train", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %s: owner %s vs %s under permuted membership", key, a.Owner(key), b.Owner(key))
		}
		pa, pb := a.Pref(key), b.Pref(key)
		if fmt.Sprint(pa) != fmt.Sprint(pb) {
			t.Fatalf("key %s: pref %v vs %v", key, pa, pb)
		}
		if len(pa) != 3 || pa[0] != a.Owner(key) {
			t.Fatalf("key %s: pref %v does not lead with owner %s over all members", key, pa, a.Owner(key))
		}
		seen := map[string]bool{}
		for _, n := range pa {
			if seen[n] {
				t.Fatalf("key %s: pref %v repeats %s", key, pa, n)
			}
			seen[n] = true
		}
	}
}

// TestRingSeedMoves guards against the seed being ignored: different
// seeds must produce different placements somewhere.
func TestRingSeedMoves(t *testing.T) {
	names := []string{"node0", "node1", "node2", "node3"}
	a, _ := NewRing(names, 64, 1)
	b, _ := NewRing(names, 64, 2)
	moved := 0
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("app%d/scg", i)
		if a.Owner(key) != b.Owner(key) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("changing the ring seed moved no keys")
	}
}

// TestRingBalance checks virtual nodes do their job: across many keys,
// no member owns a wildly disproportionate share.
func TestRingBalance(t *testing.T) {
	names := []string{"node0", "node1", "node2", "node3"}
	r, err := NewRing(names, 0, 7) // default vnodes
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("app%d/train", i))]++
	}
	for _, n := range names {
		share := float64(counts[n]) / keys
		if share < 0.10 || share > 0.45 {
			t.Fatalf("node %s owns %.1f%% of keys (counts %v); virtual nodes are not balancing", n, 100*share, counts)
		}
	}
}

// TestRingStability checks consistent hashing's point: removing one
// member only moves the keys it owned.
func TestRingStability(t *testing.T) {
	full, _ := NewRing([]string{"node0", "node1", "node2", "node3"}, 64, 9)
	less, _ := NewRing([]string{"node0", "node1", "node2"}, 64, 9)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("app%d/test", i)
		was, now := full.Owner(key), less.Owner(key)
		if was != "node3" && was != now {
			t.Fatalf("key %s moved %s→%s though its owner stayed a member", key, was, now)
		}
	}
}

// TestRingRejectsBadMembership pins the constructor's validation.
func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 8, 0); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 8, 0); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 8, 0); err == nil {
		t.Fatal("empty member name accepted")
	}
}
