package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixed returns a recorder whose clock ticks step per Emit,
// deterministically, for golden output.
func fixed(capacity int, step time.Duration) *Recorder {
	r := NewRecorder(capacity)
	base := r.start
	n := 0
	r.now = func() time.Time {
		n++
		return base.Add(time.Duration(n) * step)
	}
	return r
}

// TestRingOverflowPolicy: a full ring drops the OLDEST events, keeps
// the newest, counts the drops, and never resets sequence numbers.
func TestRingOverflowPolicy(t *testing.T) {
	const capacity = 8
	r := fixed(capacity, time.Millisecond)
	for i := 0; i < 3*capacity; i++ {
		r.Emit(UnitArrived, "", int64(i), 0)
	}
	evs := r.Events()
	if len(evs) != capacity {
		t.Fatalf("retained %d events, want %d", len(evs), capacity)
	}
	if got, want := r.Dropped(), uint64(2*capacity); got != want {
		t.Errorf("dropped = %d, want %d", got, want)
	}
	for i, e := range evs {
		wantSeq := uint64(2*capacity + i) // the newest capacity events
		if e.Seq != wantSeq {
			t.Errorf("event %d: seq = %d, want %d", i, e.Seq, wantSeq)
		}
		if e.Bytes != int64(wantSeq) {
			t.Errorf("event %d: payload %d, want %d", i, e.Bytes, wantSeq)
		}
		if i > 0 && evs[i-1].At >= e.At {
			t.Errorf("event %d: timestamps not increasing (%v then %v)", i, evs[i-1].At, e.At)
		}
	}
	if r.Len() != capacity {
		t.Errorf("Len = %d, want %d", r.Len(), capacity)
	}
}

// TestEventsBeforeOverflow: a ring that never filled returns exactly
// what was emitted, in order.
func TestEventsBeforeOverflow(t *testing.T) {
	r := fixed(16, time.Millisecond)
	r.Emit(GateBlock, "Main.main", 0, 0)
	r.Emit(GateUnblock, "Main.main", 0, 5*time.Millisecond)
	evs := r.Events()
	if len(evs) != 2 || r.Dropped() != 0 {
		t.Fatalf("events = %d, dropped = %d", len(evs), r.Dropped())
	}
	if evs[0].Kind != GateBlock || evs[1].Kind != GateUnblock {
		t.Errorf("kinds = %v, %v", evs[0].Kind, evs[1].Kind)
	}
	if evs[1].Dur != 5*time.Millisecond {
		t.Errorf("span dur = %v", evs[1].Dur)
	}
}

// TestNilRecorderIsInert: every method of a nil recorder is a safe
// no-op, so instrumentation sites need no guards.
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Emit(CRCFail, "x", 1, 1)
	if r.Events() != nil || r.Dropped() != 0 || r.Len() != 0 || r.Since() != 0 {
		t.Error("nil recorder retained state")
	}
}

// TestConcurrentEmit hammers one recorder from many goroutines; run
// under -race this is the data-race check, and the retained ring must
// stay internally consistent.
func TestConcurrentEmit(t *testing.T) {
	const goroutines, each = 8, 500
	r := NewRecorder(256)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Emit(Kind(i%int(Degraded+1)), "m", int64(g), time.Duration(i))
				r.Events()
				r.Since()
			}
		}(g)
	}
	wg.Wait()
	evs := r.Events()
	if len(evs) != 256 {
		t.Fatalf("retained %d, want full ring of 256", len(evs))
	}
	if got, want := r.Dropped(), uint64(goroutines*each-256); got != want {
		t.Errorf("dropped = %d, want %d", got, want)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("retained window not contiguous at %d: seq %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// TestKindStrings: every kind has a name (the trace export keys on it).
func TestKindStrings(t *testing.T) {
	for k := Retry; k <= Degraded; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Error("out-of-range kind not flagged")
	}
}

// TestTraceGolden: the Chrome trace export of a fixed event sequence
// matches the checked-in golden file byte for byte, and parses back to
// the same summary. Regenerate with -update.
func TestTraceGolden(t *testing.T) {
	r := fixed(64, time.Millisecond)
	r.Emit(Resume, "/app", 512, 0)
	r.Emit(UnitArrived, "Main", 128, 0)
	r.Emit(CRCFail, "Fib", 64, 0)
	r.Emit(Repaired, "Fib", 64, 2*time.Millisecond)
	r.Emit(GateBlock, "Main.main", 0, 0)
	r.Emit(GateUnblock, "Main.main", 0, 3*time.Millisecond)
	r.Emit(FirstInvocation, "Main.main", 0, 0)
	r.Emit(DemandIssue, "Fib.fib", 64, 0)
	r.Emit(DemandDone, "Fib.fib", 64, time.Millisecond)
	r.Emit(Degraded, "stream failed", 0, 0)

	var got bytes.Buffer
	if err := WriteTrace(&got, r.Events(), r.Dropped()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace.golden.json")
	if *update {
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("trace export drifted from golden file (re-run with -update if intended)\ngot:\n%s", got.String())
	}

	sum, err := ParseTrace(bytes.NewReader(got.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Events != 10 {
		t.Errorf("parsed %d events, want 10", sum.Events)
	}
	if sum.Dropped != 0 {
		t.Errorf("dropped = %d", sum.Dropped)
	}
	if sum.SpanUS <= 0 {
		t.Errorf("span = %v µs", sum.SpanUS)
	}
	if sum.ByName["first-invocation Main.main"] != 1 {
		t.Errorf("summary names wrong: %v", sum.ByName)
	}
}

// TestParseTraceRejectsGarbage: the parser is the CI smoke check's
// teeth, so it must fail on non-JSON and on malformed events.
func TestParseTraceRejectsGarbage(t *testing.T) {
	if _, err := ParseTrace(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ParseTrace(bytes.NewReader([]byte(`{"traceEvents":[{"name":"x","ph":"B","ts":1}]}`))); err == nil {
		t.Error("unsupported phase accepted")
	}
	if _, err := ParseTrace(bytes.NewReader([]byte(`{"traceEvents":[{"name":"x","ph":"i","ts":-5}]}`))); err == nil {
		t.Error("negative timestamp accepted")
	}
}

// TestTraceDroppedMetadata: ring overflow is recorded in the file so a
// truncated trace is visible to the reader.
func TestTraceDroppedMetadata(t *testing.T) {
	r := fixed(4, time.Millisecond)
	for i := 0; i < 10; i++ {
		r.Emit(Retry, "", 0, time.Millisecond)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, r.Events(), r.Dropped()); err != nil {
		t.Fatal(err)
	}
	sum, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Dropped != 6 {
		t.Errorf("dropped = %d, want 6", sum.Dropped)
	}
}
