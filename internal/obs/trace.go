package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Trace lanes: Chrome renders one row per (pid, tid), so events are
// grouped into pipeline stages rather than OS threads.
const (
	laneTransfer = 1 + iota // fetch client: retries, resumes
	laneLoader              // stream loader: arrivals, CRC, quarantine/repair
	laneDemand              // demand fetches
	laneGate                // availability gate + VM first invocations
)

// lane maps an event kind to its trace row.
func lane(k Kind) int {
	switch k {
	case Retry, Resume, Degraded:
		return laneTransfer
	case UnitArrived, CRCFail, Quarantined, Repaired:
		return laneLoader
	case DemandIssue, DemandDone:
		return laneDemand
	default:
		return laneGate
	}
}

var laneNames = map[int]string{
	laneTransfer: "transfer",
	laneLoader:   "loader",
	laneDemand:   "demand",
	laneGate:     "gate+vm",
}

// traceEvent is one entry of the Chrome trace-event format ("JSON Array
// Format" with the "traceEvents" wrapper). Timestamps and durations are
// microseconds.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// traceFile is the on-disk shape WriteTrace emits and ParseTrace reads.
type traceFile struct {
	TraceEvents []traceEvent   `json:"traceEvents"`
	Meta        map[string]any `json:"otherData,omitempty"`
}

// WriteTrace exports events as Chrome trace-event JSON, loadable in any
// trace viewer (chrome://tracing, Perfetto). Span events (Dur > 0)
// become complete ("X") slices covering [At-Dur, At]; the rest become
// instants. dropped, when nonzero, is recorded in the file's metadata
// so a truncated ring is visible to the reader.
func WriteTrace(w io.Writer, events []Event, dropped uint64) error {
	const usec = 1e3 // Event times are nanoseconds; trace times are µs.
	tf := traceFile{TraceEvents: make([]traceEvent, 0, len(events)+4)}
	for tid := laneTransfer; tid <= laneGate; tid++ {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   tid,
			Args:  map[string]any{"name": laneNames[tid]},
		})
	}
	for _, e := range events {
		te := traceEvent{
			Name: e.Kind.String(),
			Cat:  laneNames[lane(e.Kind)],
			PID:  1,
			TID:  lane(e.Kind),
			TS:   float64(e.At) / usec,
			Args: map[string]any{"seq": e.Seq},
		}
		if e.Name != "" {
			te.Name = e.Kind.String() + " " + e.Name
			te.Args["subject"] = e.Name
		}
		if e.Bytes != 0 {
			te.Args["bytes"] = e.Bytes
		}
		if e.Dur > 0 {
			te.Phase = "X"
			te.TS = float64(e.At-e.Dur) / usec
			te.Dur = float64(e.Dur) / usec
		} else {
			te.Phase = "i"
			te.Scope = "t"
		}
		tf.TraceEvents = append(tf.TraceEvents, te)
	}
	if dropped > 0 {
		tf.Meta = map[string]any{"droppedEvents": dropped}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tf)
}

// TraceSummary is what ParseTrace extracts from an exported trace.
type TraceSummary struct {
	// Events is the total event count (metadata excluded).
	Events int
	// ByName counts events per name.
	ByName map[string]int
	// SpanUS is the trace's wall extent in microseconds: the latest
	// event end minus the earliest event start.
	SpanUS float64
	// Dropped is the ring-overflow count recorded in the file.
	Dropped uint64
}

// ParseTrace validates an exported trace and summarizes it — the
// read-back half of WriteTrace used by the trace subcommand and the CI
// smoke test.
func ParseTrace(r io.Reader) (*TraceSummary, error) {
	var tf traceFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tf); err != nil {
		return nil, fmt.Errorf("obs: malformed trace: %w", err)
	}
	s := &TraceSummary{ByName: make(map[string]int)}
	first, last := 0.0, 0.0
	seen := false
	for _, te := range tf.TraceEvents {
		if te.Phase == "M" {
			continue
		}
		switch te.Phase {
		case "X", "i":
		default:
			return nil, fmt.Errorf("obs: trace event %q has unsupported phase %q", te.Name, te.Phase)
		}
		if te.Dur < 0 || te.TS < 0 {
			return nil, fmt.Errorf("obs: trace event %q has negative time (ts=%v dur=%v)", te.Name, te.TS, te.Dur)
		}
		s.Events++
		s.ByName[te.Name]++
		if !seen || te.TS < first {
			first = te.TS
		}
		if end := te.TS + te.Dur; !seen || end > last {
			last = end
		}
		seen = true
	}
	if seen {
		s.SpanUS = last - first
	}
	if d, ok := tf.Meta["droppedEvents"].(float64); ok {
		s.Dropped = uint64(d)
	}
	return s, nil
}
