// Package obs is the observability substrate of the live pipeline: a
// low-overhead, concurrency-safe event recorder shared by the fetch
// client, the stream loader, the availability gate, and the VM. Every
// stage emits typed events — unit arrivals, checksum failures,
// quarantine and repair, demand-fetch issue and completion, gate blocks
// and unblocks naming the method, first invocations, transfer retries,
// stream degradation — into a fixed-capacity ring buffer with monotonic
// timestamps, so one overlapped run can be decomposed event by event
// (and exported as a Chrome trace, see WriteTrace) without perturbing
// the latencies it measures.
package obs

import (
	"sync"
	"time"
)

// Kind is the type of one recorded event.
type Kind uint8

// Event kinds, in rough pipeline order: transfer-layer first, then the
// loader's integrity machinery, then the gate and the VM.
const (
	// Retry is a transfer retry after a failed request; Dur carries the
	// backoff slept before it.
	Retry Kind = iota
	// Resume is a Range-based reconnect continuing an interrupted
	// transfer; Bytes carries the resume offset.
	Resume
	// UnitArrived is one verified unit installed from the main stream;
	// Bytes carries the payload length.
	UnitArrived
	// CRCFail is a unit payload that failed its checksum on arrival.
	CRCFail
	// Quarantined is a corrupt unit parked after its repair budget was
	// exhausted, awaiting the demand path.
	Quarantined
	// Repaired is a corrupt unit healed by a byte-range re-fetch; Dur
	// carries the repair round-trip.
	Repaired
	// DemandIssue is a byte-range demand fetch leaving the gate; Bytes
	// carries the requested length.
	DemandIssue
	// DemandDone is its completion; Dur carries the fetch round-trip.
	DemandDone
	// GateBlock is a first invocation parking at the availability gate;
	// Name carries the method.
	GateBlock
	// GateUnblock is its release; Dur carries the time blocked.
	GateUnblock
	// FirstInvocation is the VM executing a method's first instruction.
	FirstInvocation
	// Degraded is the main stream failing permanently with the demand
	// path taking over.
	Degraded
)

var kindNames = [...]string{
	Retry:           "retry",
	Resume:          "resume",
	UnitArrived:     "unit-arrived",
	CRCFail:         "crc-fail",
	Quarantined:     "quarantined",
	Repaired:        "repaired",
	DemandIssue:     "demand-issue",
	DemandDone:      "demand-done",
	GateBlock:       "gate-block",
	GateUnblock:     "gate-unblock",
	FirstInvocation: "first-invocation",
	Degraded:        "degraded",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one recorded occurrence.
type Event struct {
	// Seq is the emission sequence number, monotonically increasing
	// across the whole run (never reset by ring overflow).
	Seq uint64
	// At is the monotonic time of the event, measured from the
	// recorder's start.
	At time.Duration
	// Kind is what happened.
	Kind Kind
	// Name identifies the subject: a method as Class.Name, a class, or
	// a URL path, depending on Kind.
	Name string
	// Bytes is a byte count when the event has one (payload length,
	// resume offset), else zero.
	Bytes int64
	// Dur is the span the event completes (time blocked, fetch round
	// trip, backoff slept), else zero. Span events are stamped at their
	// END: the interval is [At-Dur, At].
	Dur time.Duration
}

// DefaultCapacity is the ring size used when NewRecorder is given a
// non-positive capacity: enough for every unit, gate crossing, and
// retry of the paper's workloads with room to spare.
const DefaultCapacity = 16384

// Recorder collects events into a fixed-capacity ring buffer. When the
// ring is full the OLDEST events are overwritten — the tail of a run is
// where stalls are diagnosed — and Dropped counts the overwritten
// events. All methods are safe for concurrent use, and every method is
// a no-op on a nil *Recorder so instrumentation sites need no guards.
type Recorder struct {
	mu      sync.Mutex
	start   time.Time
	now     func() time.Time // test hook; nil = time.Now
	buf     []Event
	next    uint64 // total events emitted; buf index = seq % cap
	dropped uint64
}

// NewRecorder returns a recorder whose clock starts now. capacity <= 0
// selects DefaultCapacity.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{start: time.Now(), buf: make([]Event, 0, capacity)}
}

// clock returns the current time via the test hook when set.
func (r *Recorder) clock() time.Time {
	if r.now != nil {
		return r.now()
	}
	return time.Now()
}

// Since is the recorder's monotonic clock: the duration from recorder
// start, the timebase of every Event.At. Zero on a nil recorder.
func (r *Recorder) Since() time.Duration {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.clock().Sub(r.start)
}

// Emit records one event, stamping it with the monotonic clock.
func (r *Recorder) Emit(k Kind, name string, bytes int64, dur time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	e := Event{
		Seq:   r.next,
		At:    r.clock().Sub(r.start),
		Kind:  k,
		Name:  name,
		Bytes: bytes,
		Dur:   dur,
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next%uint64(cap(r.buf))] = e
		r.dropped++
	}
	r.next++
	r.mu.Unlock()
}

// Events returns a snapshot of the retained events in emission order
// (oldest first). Nil on a nil recorder.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if r.next > uint64(len(r.buf)) {
		// The ring wrapped: the oldest retained event sits just past the
		// most recently overwritten slot.
		c := uint64(cap(r.buf))
		for i := uint64(0); i < c; i++ {
			out = append(out, r.buf[(r.next+i)%c])
		}
		return out
	}
	return append(out, r.buf...)
}

// Dropped is how many events the ring overwrote.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len is the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}
