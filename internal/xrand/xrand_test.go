package xrand

import "testing"

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("divergence at step %d", i)
		}
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	a, b := New(0), New(0)
	if a.Uint64() != b.Uint64() {
		t.Fatal("zero seed not deterministic")
	}
	if v := New(0).Uint64(); v == 0 {
		t.Fatal("zero seed produced zero state")
	}
}

func TestIntnRangeAndSpread(t *testing.T) {
	r := New(7)
	seen := make(map[int]int)
	const n, trials = 10, 10000
	for i := 0; i < trials; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v]++
	}
	for v := 0; v < n; v++ {
		if seen[v] < trials/n/3 {
			t.Errorf("value %d badly underrepresented: %d", v, seen[v])
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt63NonNegative(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatal("negative Int63")
		}
	}
}

func TestBytes(t *testing.T) {
	b := New(5).Bytes(256)
	if len(b) != 256 {
		t.Fatalf("len = %d", len(b))
	}
	distinct := make(map[byte]bool)
	for _, v := range b {
		distinct[v] = true
	}
	if len(distinct) < 100 {
		t.Errorf("only %d distinct byte values in 256 draws", len(distinct))
	}
}
