// Package xrand is a tiny deterministic PRNG (xorshift64*) used to
// generate workload data and structures reproducibly. The substrate never
// uses math/rand so that workload bytes, rule tables, and input corpora
// are identical across runs and platforms.
package xrand

// Rand is a xorshift64* generator. The zero value is invalid; use New.
type Rand struct{ s uint64 }

// New returns a generator seeded with seed (0 is remapped).
func New(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{s: seed}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Bytes fills a fresh n-byte slice with random bytes.
func (r *Rand) Bytes(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Uint64())
	}
	return b
}
