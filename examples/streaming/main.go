// Streaming: serve a benchmark as one interleaved virtual file over real
// HTTP (throttled), load it non-strictly on the client with the stream
// loader — class-level verification as each global-data unit arrives,
// method-level verification as each body arrives — then execute the
// program and report how much earlier each method was runnable compared
// with a strict whole-file loader.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"nonstrict"
	"nonstrict/internal/jir"
	"nonstrict/internal/stream"
)

// throttleWriter flushes and paces the response to ~rate bytes/second.
type throttleWriter struct {
	w    http.ResponseWriter
	fl   http.Flusher
	rate int
}

func (t *throttleWriter) Write(p []byte) (int, error) {
	const chunk = 256
	written := 0
	for off := 0; off < len(p); off += chunk {
		end := off + chunk
		if end > len(p) {
			end = len(p)
		}
		n, err := t.w.Write(p[off:end])
		written += n
		if err != nil {
			return written, err
		}
		if t.fl != nil {
			t.fl.Flush()
		}
		time.Sleep(time.Duration(n) * time.Second / time.Duration(t.rate))
	}
	return written, nil
}

func main() {
	app, err := nonstrict.Benchmark("Hanoi")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := jir.Compile(app.IR)
	if err != nil {
		log.Fatal(err)
	}
	order, ix, err := nonstrict.PredictStatic(prog)
	if err != nil {
		log.Fatal(err)
	}
	rp, _ := nonstrict.Restructure(prog, ix, order)
	writer, err := stream.NewWriter(rp, ix, order)
	if err != nil {
		log.Fatal(err)
	}

	// Server: the interleaved virtual file at ~8 KB/s.
	mux := http.NewServeMux()
	mux.HandleFunc("/app", func(w http.ResponseWriter, req *http.Request) {
		fl, _ := w.(http.Flusher)
		if _, err := writer.WriteTo(&throttleWriter{w: w, fl: fl, rate: 8 * 1024}); err != nil {
			log.Printf("serve: %v", err)
		}
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()

	// Client: non-strict loading with incremental verification.
	resp, err := http.Get("http://" + ln.Addr().String() + "/app")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()

	start := time.Now()
	loader := stream.NewLoader(rp.Name, rp.MainClass, nil)
	type arrival struct {
		ref nonstrict.Ref
		at  time.Duration
	}
	var ready []arrival
	classDone := map[string]time.Duration{}
	if err := loader.Load(resp.Body, func(e stream.Event) {
		switch e.Kind {
		case stream.MethodReady:
			ready = append(ready, arrival{ref: e.Method, at: time.Since(start)})
		case stream.ClassComplete:
			classDone[e.Class] = time.Since(start)
		}
	}); err != nil {
		log.Fatal(err)
	}
	total := time.Since(start)

	streamed, err := loader.Program()
	if err != nil {
		log.Fatal(err)
	}
	m, err := nonstrict.Execute(streamed, nonstrict.RunOptions{Args: app.TestArgs})
	if err != nil {
		log.Fatal(err)
	}
	if err := app.Check(m, false); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("streamed %d classes (%d units, %d bytes) over HTTP in %v\n",
		len(rp.Classes), writer.Units(), loader.Consumed(), total.Round(time.Millisecond))
	fmt.Printf("program verified incrementally, executed %d instructions, self-check ok\n\n", m.Steps())
	fmt.Printf("%-22s %12s %14s %10s\n", "method", "non-strict", "strict (file)", "earlier")
	for i, a := range ready {
		if i >= 8 {
			fmt.Printf("... and %d more\n", len(ready)-8)
			break
		}
		strictAt := classDone[a.ref.Class]
		fmt.Printf("%-22s %12v %14v %10v\n", a.ref,
			a.at.Round(time.Millisecond), strictAt.Round(time.Millisecond),
			(strictAt - a.at).Round(time.Millisecond))
	}
}
