// Quickstart: author a small mobile program, run the whole non-strict
// pipeline on it, and compare strict transfer against non-strict
// interleaved transfer on a modem link.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nonstrict"
	"nonstrict/internal/jir"
	"nonstrict/internal/transfer"
)

func main() {
	// A three-class application: main exercises a math helper class in
	// a loop, then a reporting class once at the end.
	prog := &jir.Program{
		Name: "quickstart",
		Main: "App",
		Classes: []*jir.Class{
			{Name: "App", Fields: []string{"out"}, Funcs: []*jir.Func{
				{Name: "main", Body: jir.Block(
					jir.Let("s", jir.I(0)),
					jir.For(jir.Let("i", jir.I(1)), jir.Le(jir.L("i"), jir.I(200)), jir.Inc("i"), jir.Block(
						jir.Let("s", jir.Add(jir.L("s"), jir.Call("Math", "square", jir.L("i")))),
					)),
					jir.Do(jir.Call("Report", "emit", jir.L("s"))),
					jir.Halt(),
				)},
				// Cold startup helpers: with strict execution their
				// bytes delay main; with non-strict they do not.
				{Name: "usage", NRet: 1, LocalData: 800, Body: jir.Block(
					jir.Ret(jir.ALen(jir.Str("usage: quickstart <n>"))),
				)},
				{Name: "banner", NRet: 1, LocalData: 800, Body: jir.Block(
					jir.Ret(jir.ALen(jir.Str("quickstart 1.0"))),
				)},
			}},
			{Name: "Math", Funcs: []*jir.Func{
				{Name: "square", Params: []string{"x"}, NRet: 1, LocalData: 600, Body: jir.Block(
					jir.Ret(jir.Mul(jir.L("x"), jir.L("x"))),
				)},
				{Name: "cube", Params: []string{"x"}, NRet: 1, LocalData: 900, Body: jir.Block(
					jir.Ret(jir.Mul(jir.L("x"), jir.Mul(jir.L("x"), jir.L("x")))),
				)}, // never called: transferred last (or never)
			}},
			{Name: "Report", Funcs: []*jir.Func{
				{Name: "emit", Params: []string{"v"}, LocalData: 700, Body: jir.Block(
					jir.SetG("App", "out", jir.L("v")),
					jir.RetV(),
				)},
			}},
		},
	}
	compiled, err := jir.Compile(prog)
	if err != nil {
		log.Fatal(err)
	}
	if err := nonstrict.Verify(compiled); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program: %d classes, %d methods, %d bytes\n",
		len(compiled.Classes), compiled.NumMethods(), compiled.TotalSize())

	// Execute in the VM, collecting the profile and segment trace.
	m, err := nonstrict.Execute(compiled, nonstrict.RunOptions{Trace: true})
	if err != nil {
		log.Fatal(err)
	}
	out, _ := m.Global("App", "out")
	fmt.Printf("executed %d instructions; App.out = %d\n", m.Steps(), out)

	// Predict first use statically and restructure.
	order, ix, err := nonstrict.PredictStatic(compiled)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("predicted first-use order:")
	for _, id := range order.Methods {
		fmt.Printf(" %v", ix.Ref(id))
	}
	fmt.Println()

	rp, layouts := nonstrict.Restructure(compiled, ix, order)

	// Simulate: strict sequential vs non-strict interleaved on a modem.
	cpi := int64(100)
	link := nonstrict.Modem

	strictFiles, err := transfer.BuildFiles(rp, layouts, nonstrict.Strict, nil)
	if err != nil {
		log.Fatal(err)
	}
	strictEng, err := transfer.NewSequential(order.ClassOrder(ix), strictFiles, link)
	if err != nil {
		log.Fatal(err)
	}
	strictRes, err := nonstrict.Simulate(m.Trace(), ix, strictEng, cpi)
	if err != nil {
		log.Fatal(err)
	}

	ilvEng := transfer.NewInterleaved(order, ix, layouts, nil, link)
	ilvRes, err := nonstrict.Simulate(m.Trace(), ix, ilvEng, cpi)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-28s %15s %15s\n", "", "strict", "non-strict ilv")
	fmt.Printf("%-28s %15d %15d\n", "invocation latency (cycles)",
		strictRes.InvocationLatency, ilvRes.InvocationLatency)
	fmt.Printf("%-28s %15d %15d\n", "total cycles",
		strictRes.TotalCycles, ilvRes.TotalCycles)
	fmt.Printf("%-28s %15s %14.1f%%\n", "of strict", "100%",
		100*float64(ilvRes.TotalCycles)/float64(strictRes.TotalCycles))
}
