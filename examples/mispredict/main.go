// Mispredict: when the first-use prediction is wrong, the parallel
// transfer engine corrects on demand (paper §5.1) — the missing class
// starts transferring immediately if a connection slot is free, or is
// queued next otherwise. This example builds a program whose execution
// path depends on its input, predicts statically, and compares the
// misprediction penalty under different connection limits against a
// profile-guided (perfect) ordering.
//
//	go run ./examples/mispredict
package main

import (
	"fmt"
	"log"

	"nonstrict"
	"nonstrict/internal/jir"
	"nonstrict/internal/transfer"
)

func buildProgram() *jir.Program {
	// main dispatches on its input: mode 0 runs the Common path the
	// static estimator predicts (it has the loop); mode 1 runs the Rare
	// path instead.
	work := func(cls string) *jir.Class {
		return &jir.Class{Name: cls, Funcs: []*jir.Func{
			{Name: "run", Params: []string{"n"}, NRet: 1, LocalData: 2200, Body: jir.Block(
				jir.Let("s", jir.I(0)),
				jir.For(jir.Let("i", jir.I(0)), jir.Lt(jir.L("i"), jir.L("n")), jir.Inc("i"), jir.Block(
					jir.Let("s", jir.Add(jir.L("s"), jir.Mul(jir.L("i"), jir.L("i")))),
				)),
				jir.Ret(jir.L("s")),
			)},
			{Name: "helper", Params: []string{"x"}, NRet: 1, LocalData: 1800, Body: jir.Block(
				jir.Ret(jir.Mul(jir.L("x"), jir.I(3))),
			)},
		}}
	}
	return &jir.Program{
		Name: "mispredict",
		Main: "App",
		Classes: []*jir.Class{
			{Name: "App", Fields: []string{"out"}, Funcs: []*jir.Func{
				{Name: "main", Params: []string{"mode"}, LocalData: 400, Body: jir.Block(
					jir.If(jir.Eq(jir.L("mode"), jir.I(0)),
						jir.Block(
							// Loopy branch: the static estimator
							// prefers this path.
							jir.Let("v", jir.I(0)),
							jir.For(jir.Let("i", jir.I(0)), jir.Lt(jir.L("i"), jir.I(50)), jir.Inc("i"), jir.Block(
								jir.Let("v", jir.Add(jir.L("v"), jir.Call("Common", "run", jir.I(40)))),
							)),
							jir.SetG("App", "out", jir.L("v")),
						),
						jir.Block(
							jir.SetG("App", "out", jir.Call("Rare", "run", jir.I(2000))),
						)),
					jir.Halt(),
				)},
			}},
			work("Common"),
			work("Rare"),
		},
	}
}

func main() {
	prog, err := jir.Compile(buildProgram())
	if err != nil {
		log.Fatal(err)
	}
	order, ix, err := nonstrict.PredictStatic(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("static prediction:")
	for _, id := range order.Methods {
		fmt.Printf(" %v", ix.Ref(id))
	}
	fmt.Println()

	// Execute with mode=1: the Rare path runs, defeating the prediction.
	m, err := nonstrict.Execute(prog, nonstrict.RunOptions{Trace: true, Args: []int64{1}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("actual run (mode=1) used %d of %d methods\n\n",
		m.Profile().Executed(), prog.NumMethods())

	perfect := nonstrict.PredictFromProfile(ix, m.Profile(), order)
	link := nonstrict.Link{Name: "slow", CyclesPerByte: 20000}
	const cpi = 50

	simulate := func(o *nonstrict.Order, limit int) nonstrict.Result {
		rp, layouts := nonstrict.Restructure(prog, ix, o)
		files, err := transfer.BuildFiles(rp, layouts, nonstrict.NonStrict, nil)
		if err != nil {
			log.Fatal(err)
		}
		sched, err := transfer.BuildSchedule(o, ix, files, layouts, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		eng, err := transfer.NewParallel(sched, files, link, limit)
		if err != nil {
			log.Fatal(err)
		}
		res, err := nonstrict.Simulate(m.Trace(), ix, eng, cpi)
		if err != nil {
			log.Fatal(err)
		}
		res.Mispredicts = eng.Mispredicts()
		return res
	}

	fmt.Printf("%-34s %8s %12s %12s\n", "configuration", "mispred", "stall cyc", "total cyc")
	for _, cfg := range []struct {
		name  string
		order *nonstrict.Order
		limit int
	}{
		{"static order, limit 1", order, 1},
		{"static order, limit 4", order, 4},
		{"profile order (perfect), limit 1", perfect, 1},
	} {
		res := simulate(cfg.order, cfg.limit)
		fmt.Printf("%-34s %8d %12d %12d\n", cfg.name, res.Mispredicts, res.StallCycles, res.TotalCycles)
	}
	fmt.Println("\nwith limit 1 the mispredicted class must wait for the current file to")
	fmt.Println("finish; with limit 4 the demand fetch starts immediately in a free slot.")
}
