package nonstrict_test

import (
	"fmt"
	"log"

	"nonstrict"
)

// Simulate the paper's flagship configuration: Jess restructured with a
// test profile, streamed as one interleaved virtual file over a modem.
func ExampleBench_Simulate() {
	bench, err := nonstrict.LoadBenchmark("Jess")
	if err != nil {
		log.Fatal(err)
	}
	res, err := bench.Simulate(nonstrict.Variant{
		Order:  nonstrict.Test,
		Engine: nonstrict.Interleaved,
		Mode:   nonstrict.NonStrict,
		Link:   nonstrict.Modem,
	})
	if err != nil {
		log.Fatal(err)
	}
	pct := 100 * float64(res.TotalCycles) / float64(bench.StrictTotal(nonstrict.Modem))
	fmt.Printf("Jess on a modem finishes in %.0f%% of the strict time\n", pct)
	fmt.Printf("mispredicts under the perfect profile: %d\n", res.Mispredicts)
	// Output:
	// Jess on a modem finishes in 48% of the strict time
	// mispredicts under the perfect profile: 0
}

// Execute a benchmark in the VM and inspect its first-use profile.
func ExampleExecute() {
	app, err := nonstrict.Benchmark("Hanoi")
	if err != nil {
		log.Fatal(err)
	}
	bench, err := nonstrict.LoadBenchmark(app.Name)
	if err != nil {
		log.Fatal(err)
	}
	prof := bench.TestProfile
	fmt.Printf("methods executed: %d of %d\n", prof.Executed(), bench.Prog.NumMethods())
	fmt.Printf("first method used: %v\n", bench.Ix.Ref(prof.FirstUse[0]))
	// Output:
	// methods executed: 48 of 54
	// first method used: Hanoi.main
}

// Predict first use statically and restructure a program's class files.
func ExamplePredictStatic() {
	app, err := nonstrict.Benchmark("TestDes")
	if err != nil {
		log.Fatal(err)
	}
	bench, err := nonstrict.LoadBenchmark(app.Name)
	if err != nil {
		log.Fatal(err)
	}
	order, _, _, _ := bench.Prepared(nonstrict.SCG)
	// After restructuring, the entry point leads its class file.
	fmt.Printf("first in predicted order: %v\n", bench.Ix.Ref(order.Methods[0]))
	// Output:
	// first in predicted order: TestDes.main
}
